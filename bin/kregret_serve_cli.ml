(* kregret_serve — StoredList-backed k-regret query server over any mix of
   Unix-domain and TCP stream sockets, speaking the line-oriented JSON
   protocol [kregret-serve/v1] (see lib/serve/protocol.mli).

   Server mode (default): bind every --listen endpoint (or --socket),
   optionally --preload datasets, serve until a [shutdown] request (or
   SIGINT/SIGTERM) arrives. One event-driven IO thread multiplexes every
   listener and connection; --workers threads run the request handlers.

   Client mode (--client): connect to --connect (or --socket) and run the
   commands given as positional arguments (shorthand verbs or raw JSON
   frames; reads stdin when none are given), printing one raw response
   line per request.

   Exit status: 0 = success, 1 = a request failed / server error,
   124 = bad usage. *)

open Cmdliner
module Serve = Kregret_serve
module Pool = Kregret_parallel.Pool
module Obs = Kregret_obs

let with_obs (metrics, stats) f =
  if metrics <> None || stats then begin
    Obs.Control.set_clock Unix.gettimeofday;
    Obs.Control.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      (match metrics with
      | Some path -> Obs.Export.write ~path
      | None -> ());
      if stats then Obs.Export.pp_table Format.err_formatter ())
    f

(* ---- client mode --------------------------------------------------------- *)

(* Translate a shorthand command to one request frame. *)
let frame_of_command = function
  | [ "ping" ] -> Ok (`Send [ ("op", Serve.Json.Str "ping") ])
  | [ "list" ] -> Ok (`Send [ ("op", Serve.Json.Str "list") ])
  | [ "stats" ] -> Ok (`Send [ ("op", Serve.Json.Str "stats") ])
  | [ "shutdown" ] -> Ok (`Send [ ("op", Serve.Json.Str "shutdown") ])
  | [ "evict" ] -> Ok (`Send [ ("op", Serve.Json.Str "evict") ])
  | [ "evict"; name ] ->
      Ok (`Send [ ("op", Serve.Json.Str "evict"); ("name", Serve.Json.Str name) ])
  | [ "load"; name; path ] ->
      Ok
        (`Send
          [
            ("op", Serve.Json.Str "load");
            ("name", Serve.Json.Str name);
            ("path", Serve.Json.Str path);
          ])
  | [ "load"; name; path; third ] -> (
      (* an integer third word is a shard count, a non-integer float is an
         ε-kernel approximation bound *)
      match (int_of_string_opt third, float_of_string_opt third) with
      | Some s, _ ->
          Ok
            (`Send
              [
                ("op", Serve.Json.Str "load");
                ("name", Serve.Json.Str name);
                ("path", Serve.Json.Str path);
                ("shards", Serve.Json.int s);
              ])
      | None, Some e ->
          Ok
            (`Send
              [
                ("op", Serve.Json.Str "load");
                ("name", Serve.Json.Str name);
                ("path", Serve.Json.Str path);
                ("approx", Serve.Json.Num e);
              ])
      | None, None ->
          Error
            (Printf.sprintf
               "load: expected an integer SHARDS or a float EPS, got %S" third))
  | [ "load"; name; path; shards; eps ] -> (
      match (int_of_string_opt shards, float_of_string_opt eps) with
      | Some s, Some e ->
          Ok
            (`Send
              [
                ("op", Serve.Json.Str "load");
                ("name", Serve.Json.Str name);
                ("path", Serve.Json.Str path);
                ("shards", Serve.Json.int s);
                ("approx", Serve.Json.Num e);
              ])
      | None, _ ->
          Error
            (Printf.sprintf "load: SHARDS must be an integer, got %S" shards)
      | _, None ->
          Error (Printf.sprintf "load: EPS must be a float, got %S" eps))
  | [ "wait"; name ] -> Ok (`Wait name)
  | [ "flush"; name ] ->
      Ok
        (`Send [ ("op", Serve.Json.Str "flush"); ("name", Serve.Json.Str name) ])
  | [ "insert"; name; point ] -> (
      let coords =
        String.split_on_char ',' point
        |> List.map (fun c -> float_of_string_opt (String.trim c))
      in
      if List.exists (fun c -> c = None) coords || coords = [] then
        Error
          (Printf.sprintf
             "insert: POINT must be comma-separated floats, got %S" point)
      else
        Ok
          (`Send
            [
              ("op", Serve.Json.Str "insert");
              ("name", Serve.Json.Str name);
              ( "point",
                Serve.Json.Arr
                  (List.map (fun c -> Serve.Json.Num (Option.get c)) coords) );
            ]))
  | [ "delete"; name; id ] -> (
      match int_of_string_opt id with
      | Some id ->
          Ok
            (`Send
              [
                ("op", Serve.Json.Str "delete");
                ("name", Serve.Json.Str name);
                ("id", Serve.Json.int id);
              ])
      | None -> Error (Printf.sprintf "delete: ID must be an integer, got %S" id))
  | [ op; name; k ] when op = "query" || op = "mrr" || op = "rank_regret" -> (
      match int_of_string_opt k with
      | Some k ->
          Ok
            (`Send
              [
                ("op", Serve.Json.Str op);
                ("name", Serve.Json.Str name);
                ("k", Serve.Json.int k);
              ])
      | None -> Error (Printf.sprintf "%s: K must be an integer, got %S" op k))
  | cmd ->
      Error
        (Printf.sprintf
           "unknown command %S (expected: ping | list | stats | shutdown | \
            evict [NAME] | load NAME PATH [SHARDS] [EPS] | query NAME K | \
            mrr NAME K | rank_regret NAME K | insert NAME P1,P2,.. | \
            delete NAME ID | flush NAME | wait NAME, or a raw JSON frame)"
           (String.concat " " cmd))

(* Group the positional words into commands: a word starting with '{' is a
   complete raw frame; otherwise a verb consumes its fixed argument count. *)
let rec group_commands = function
  | [] -> Ok []
  | raw :: rest when String.length raw > 0 && raw.[0] = '{' ->
      Result.map (fun cmds -> `Raw raw :: cmds) (group_commands rest)
  | verb :: rest ->
      let arity =
        match verb with
        | "ping" | "list" | "stats" | "shutdown" -> Ok 0
        | "wait" | "flush" -> Ok 1
        | "query" | "mrr" | "rank_regret" -> Ok 2
        | "insert" | "delete" -> Ok 2
        | "load" ->
            (* NAME PATH plus a greedy optional SHARDS (integer) and/or EPS
               (float) — paths are never bare numbers in practice *)
            Ok
              (match rest with
              | _ :: _ :: third :: fourth :: _
                when int_of_string_opt third <> None
                     && float_of_string_opt fourth <> None ->
                  4
              | _ :: _ :: third :: _ when float_of_string_opt third <> None ->
                  3
              | _ -> 2)
        | "evict" ->
            (* greedy 1-arg unless the next word is a verb or raw frame *)
            Ok
              (match rest with
              | next :: _
                when next.[0] <> '{'
                     && not
                          (List.mem next
                             [
                               "ping"; "list"; "stats"; "shutdown"; "evict";
                               "load"; "query"; "mrr"; "rank_regret";
                               "insert"; "delete"; "flush"; "wait";
                             ]) ->
                  1
              | _ -> 0)
        | _ -> Error (Printf.sprintf "unknown command %S" verb)
      in
      Result.bind arity (fun n ->
          if List.length rest < n then
            Error (Printf.sprintf "%s: expected %d argument(s)" verb n)
          else
            let args = List.filteri (fun i _ -> i < n) rest in
            let rest = List.filteri (fun i _ -> i >= n) rest in
            Result.bind (frame_of_command (verb :: args)) (fun cmd ->
                Result.map (fun cmds -> cmd :: cmds) (group_commands rest)))

let read_stdin_frames () =
  let rec go acc =
    match In_channel.input_line stdin with
    | None -> List.rev acc
    | Some line when String.trim line = "" -> go acc
    | Some line -> go (`Raw (String.trim line) :: acc)
  in
  go []

let run_client ~endpoint ~timeout commands =
  match group_commands commands with
  | Error m ->
      Fmt.epr "kregret_serve: %s@." m;
      124
  | Ok cmds -> (
      let cmds = if cmds = [] then read_stdin_frames () else cmds in
      match Serve.Client.connect_to ~timeout endpoint with
      | Error m ->
          Fmt.epr "kregret_serve: connect %s: %s@."
            (Serve.Endpoint.to_string endpoint)
            m;
          1
      | Ok client ->
          let ok = ref true in
          let send_raw line =
            match Serve.Client.request_raw client line with
            | Error m ->
                ok := false;
                Fmt.epr "kregret_serve: %s@." m
            | Ok resp ->
                print_endline resp;
                (match Serve.Json.parse resp with
                | Ok j
                  when Serve.Json.member "ok" j = Some (Serve.Json.Bool true) ->
                    ()
                | Ok _ | Error _ -> ok := false)
          in
          List.iter
            (fun cmd ->
              match cmd with
              | `Raw line -> send_raw line
              | `Send fields ->
                  send_raw (Serve.Json.to_string (Serve.Json.Obj fields))
              | `Wait name -> (
                  match Serve.Client.wait_ready client ~name with
                  | Ok () ->
                      print_endline
                        (Serve.Protocol.ok_response
                           [
                             ("op", Serve.Json.Str "wait");
                             ("name", Serve.Json.Str name);
                             ("status", Serve.Json.Str "ready");
                           ])
                  | Error m ->
                      ok := false;
                      Fmt.epr "kregret_serve: wait %s: %s@." name m))
            cmds;
          Serve.Client.close client;
          if !ok then 0 else 1)

(* ---- server mode --------------------------------------------------------- *)

let parse_preload spec =
  match String.index_opt spec '=' with
  | Some i when i > 0 && i < String.length spec - 1 ->
      Ok (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  | _ -> Error (Printf.sprintf "--preload expects NAME=PATH, got %S" spec)

let run_server ~listeners ~cache_size ~max_line ~retry_after ~max_k ~workers
    ~shards ~approx ~preload ~quiet () =
  let preloads =
    List.map
      (fun spec ->
        match parse_preload spec with
        | Ok p -> p
        | Error m ->
            Fmt.epr "kregret_serve: %s@." m;
            exit 124)
      preload
  in
  let config =
    Serve.Server.config ~cache_capacity:cache_size ~max_line ~retry_after
      ?max_length:max_k ~workers ~shards ~approx ~listeners ()
  in
  match Serve.Server.start config with
  | Error m ->
      Fmt.epr "kregret_serve: cannot bind %s@." m;
      1
  | Ok server ->
      let stop _ = Serve.Server.signal_stop server in
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop)
       with Invalid_argument _ | Sys_error _ -> ());
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop)
       with Invalid_argument _ | Sys_error _ -> ());
      let registry = Serve.Server.registry server in
      let preload_failed = ref false in
      List.iter
        (fun (name, path) ->
          match Serve.Registry.load ~shards ~approx registry ~name ~path with
          | Ok _ -> if not quiet then Fmt.epr "preloading %s (%s)@." name path
          | Error m ->
              preload_failed := true;
              Fmt.epr "kregret_serve: preload %s: %s@." name m)
        preloads;
      if !preload_failed then begin
        Serve.Server.stop server;
        1
      end
      else begin
        if not quiet then
          Fmt.epr
            "kregret_serve: listening on %s (cache %d, workers %d, jobs %d)@."
            (String.concat ", "
               (List.map Serve.Endpoint.to_string
                  (Serve.Server.endpoints server)))
            cache_size workers (Pool.get_jobs ());
        Serve.Server.wait server;
        if not quiet then Fmt.epr "kregret_serve: stopped@.";
        0
      end

(* ---- cmdliner ------------------------------------------------------------ *)

let run client socket listen connect timeout cache_size max_line retry_after
    max_k workers shards approx preload jobs quiet obs commands =
  with_obs obs @@ fun () ->
  Pool.set_jobs jobs;
  let parse_endpoint spec =
    match Serve.Endpoint.parse spec with
    | Ok ep -> ep
    | Error m ->
        Fmt.epr "kregret_serve: %s@." m;
        exit 124
  in
  if client then
    let endpoint =
      parse_endpoint (match connect with Some c -> c | None -> socket)
    in
    run_client ~endpoint ~timeout commands
  else if commands <> [] then begin
    Fmt.epr
      "kregret_serve: positional commands are only valid with --client@.";
    124
  end
  else
    (* --listen wins; plain --socket keeps the pre-TCP calling convention *)
    let listeners =
      match listen with
      | [] -> [ Serve.Endpoint.Unix_path socket ]
      | specs -> List.map parse_endpoint specs
    in
    run_server ~listeners ~cache_size ~max_line ~retry_after ~max_k ~workers
      ~shards ~approx ~preload ~quiet ()

let socket_arg =
  Arg.(
    value
    & opt string (Filename.concat (Filename.get_temp_dir_name ()) "kregret-serve.sock")
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path to bind (server) or connect to (client). \
           Superseded by $(b,--listen) / $(b,--connect).")

let listen_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "listen" ] ~docv:"ENDPOINT"
        ~doc:
          "Listen on $(docv) — $(b,unix:)PATH or $(b,tcp:)HOST:PORT (port 0 \
           picks a free port). Repeatable; every listener serves the same \
           registry. Overrides $(b,--socket).")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ENDPOINT"
        ~doc:
          "Client mode: connect to $(docv) ($(b,unix:)PATH or \
           $(b,tcp:)HOST:PORT) instead of $(b,--socket).")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:"Request-handler threads behind the event-driven IO loop.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Default shard count for dataset loads: with $(docv) > 1 each load \
           scatter-gathers the build across $(docv) contiguous partitions \
           (answers stay bit-identical; sharded datasets are static). A \
           per-load $(i,shards) field on the wire overrides this.")

let approx_arg =
  Arg.(
    value & opt float 0.
    & info [ "approx" ] ~docv:"EPS"
        ~doc:
          "Default ε-kernel bound for dataset loads: with $(docv) > 0 each \
           load first reduces the data to the per-direction maxima of a \
           direction net with worst-case regret slack at most $(docv) — \
           answers become approximate with a certified additive bound, and \
           approximate datasets are static. A per-load $(i,approx) field on \
           the wire overrides this. 0 (the default) keeps loads exact.")

let client_arg =
  Arg.(
    value & flag
    & info [ "client" ]
        ~doc:
          "Client mode: connect to $(b,--socket) and run the $(i,COMMAND) \
           arguments (or JSON frames from stdin), printing one raw response \
           line per request. Exits 1 if any response is not ok.")

let timeout_arg =
  Arg.(
    value & opt float 30.
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Client receive timeout per response.")

let cache_arg =
  Arg.(
    value & opt int 128
    & info [ "cache-size" ] ~docv:"N"
        ~doc:"Result-cache capacity in entries; 0 disables caching.")

let max_line_arg =
  Arg.(
    value
    & opt int Serve.Protocol.default_max_line
    & info [ "max-line" ] ~docv:"BYTES" ~doc:"Per-frame size limit.")

let retry_after_arg =
  Arg.(
    value & opt float 0.05
    & info [ "retry-after" ] ~docv:"SECONDS"
        ~doc:"Hint attached to $(i,building) errors.")

let max_k_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-k" ] ~docv:"K"
        ~doc:
          "Cap StoredList materialization at $(docv) points per dataset; \
           queries beyond the cap return the whole materialized list.")

let preload_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "preload" ] ~docv:"NAME=PATH"
        ~doc:"Load a CSV dataset at startup (repeatable).")

(* validated at parse time: a bad --jobs is a usage error (exit 124) *)
let jobs_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Ok j
    | Some j -> Error (`Msg (Printf.sprintf "JOBS must be >= 1 (got %d)" j))
    | None -> Error (`Msg (Printf.sprintf "JOBS must be an integer, got %S" s))
  in
  Arg.conv ~docv:"JOBS" (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt jobs_conv (Pool.get_jobs ())
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "Pool width for dataset builds. Served answers are bit-identical \
           at any width.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress logging.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Enable observability and write a kregret-obs/v1 JSON metrics \
           snapshot to $(docv) on exit.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Enable observability and print a human-readable metrics table to \
           stderr on exit.")

let obs_term = Term.(const (fun m s -> (m, s)) $ metrics_arg $ stats_arg)

let commands_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"COMMAND"
        ~doc:
          "Client-mode commands: $(b,ping), $(b,list), $(b,stats), \
           $(b,shutdown), $(b,evict) [NAME], $(b,load) NAME PATH [SHARDS] \
           [EPS], $(b,query) \
           NAME K, $(b,mrr) NAME K, $(b,rank_regret) NAME K, $(b,insert) \
           NAME P1,P2,.., $(b,delete) \
           NAME ID, $(b,flush) NAME, $(b,wait) NAME, or a raw JSON frame \
           (anything starting with '{'). A bare numeric third word after \
           $(b,load) is SHARDS when an integer, EPS when a float.")

let cmd =
  let doc = "serve k-regret queries from precomputed StoredLists" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the offline pipeline of the paper (skyline filter, happy-point \
         reduction, GeoGreedy materialization) once per loaded dataset, in \
         the background, then answers every $(i,query)/$(i,mrr) request as \
         an O(k) StoredList prefix read — with an LRU result cache and \
         single-flight coalescing of concurrent identical queries on top. \
         $(i,rank_regret) requests answer the sibling rank-regret \
         representative query (lib/rrr/rrr.mli): a <= K subset minimizing \
         the certified max rank over every linear preference, cached under \
         its own key kind so rank certificates and regret selections never \
         collide. \
         Loaded datasets are dynamic: $(i,insert)/$(i,delete)/$(i,flush) \
         requests apply incremental maintenance (lib/core/dynamic.mli) on \
         the server's build worker, and queries key on the dataset epoch so \
         stale cached answers age out on their own. The wire protocol is one \
         JSON object per line over a stream socket (kregret-serve/v1): any \
         mix of Unix-domain and TCP listeners via repeated $(b,--listen), \
         multiplexed by one event-driven IO thread with a $(b,--workers) \
         handler pool. Loads with $(i,shards) > 1 build through the \
         scatter-gather shard tier (lib/serve/shard.mli) — identical \
         answers, static datasets. Loads with $(i,approx) = ε > 0 reduce the \
         data to an ε-kernel first (lib/approx/kernel.mli): much faster \
         builds, answers carry a certified additive regret bound, and exact \
         and approximate answers for the same file never share a cache \
         entry.";
      `S Manpage.s_examples;
      `Pre
        "  kregret_serve --listen unix:/tmp/kr.sock --listen \
         tcp:127.0.0.1:7070 --preload nba=nba.csv &\n\
        \  kregret_serve --connect tcp:127.0.0.1:7070 --client wait nba query \
         nba 5\n\
        \  echo '{\"op\":\"stats\"}' | kregret_serve --socket /tmp/kr.sock \
         --client\n\
        \  kregret_serve --socket /tmp/kr.sock --client shutdown";
    ]
  in
  Cmd.v
    (Cmd.info "kregret_serve" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ client_arg $ socket_arg $ listen_arg $ connect_arg
      $ timeout_arg $ cache_arg $ max_line_arg $ retry_after_arg $ max_k_arg
      $ workers_arg $ shards_arg $ approx_arg $ preload_arg $ jobs_arg
      $ quiet_arg $ obs_term $ commands_arg)

let () = exit (Cmd.eval' cmd)
