(* kregret_fuzz — deterministic differential fuzzing driver.

   Generates a seeded stream of random k-regret instances (uniform /
   correlated / anti-correlated, d in 2..7, n in 1..400, with degenerate
   mutations) and cross-checks every independent evaluator in the
   repository on each one (see Kregret_check.Oracle). On failure the
   instance is shrunk to a minimal repro and persisted to the corpus
   directory, where test/test_corpus.ml replays it as a tier-1 regression
   test forever after.

   Exit status: 0 = all instances passed, 1 = failures found (repros
   written), 124 = bad usage. *)

open Cmdliner
module Fuzzer = Kregret_check.Fuzzer
module Oracle = Kregret_check.Oracle
module Obs = Kregret_obs

let replay_corpus corpus =
  match Kregret_check.Corpus.list ~dir:corpus with
  | [] ->
      Fmt.pr "no repros in %s@." corpus;
      0
  | bases ->
      let failed = ref 0 in
      List.iter
        (fun base ->
          match Fuzzer.replay ~dir:corpus base with
          | [] -> Fmt.pr "%-24s PASS@." base
          | fs ->
              incr failed;
              Fmt.pr "%-24s FAIL@." base;
              List.iter (fun f -> Fmt.pr "  %a@." Oracle.pp_failure f) fs)
        bases;
      if !failed = 0 then 0 else 1

let with_obs (metrics, stats) f =
  if metrics <> None || stats then begin
    Obs.Control.set_clock Unix.gettimeofday;
    Obs.Control.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      (match metrics with
      | Some path -> Obs.Export.write ~path
      | None -> ());
      if stats then Obs.Export.pp_table Format.err_formatter ())
    f

let run replay instances seed corpus no_persist samples jobs_hi suite
    shrink_attempts quiet obs =
  with_obs obs @@ fun () ->
  if replay then replay_corpus corpus
  else begin
  if instances < 0 then begin
    Fmt.epr "kregret_fuzz: --instances must be non-negative@.";
    exit 124
  end;
  let config =
    {
      Fuzzer.instances;
      seed;
      oracle = { Oracle.samples; jobs_hi; suite };
      shrink_attempts;
      corpus_dir = (if no_persist then None else Some corpus);
      log = (if quiet then None else Some prerr_endline);
    }
  in
  let summary = Obs.Span.with_ "fuzz.campaign" (fun () -> Fuzzer.run config) in
  Fmt.pr "%a" Fuzzer.pp_summary summary;
  if summary.Fuzzer.failed = [] then 0 else 1
  end

let instances_arg =
  Arg.(
    value & opt int 200
    & info [ "instances" ] ~docv:"N" ~doc:"Number of random instances to check.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"SEED"
        ~doc:
          "Campaign master seed. The instance stream is a pure function of \
           the seed: same seed, same instances, on any machine and at any \
           pool width.")

let corpus_arg =
  Arg.(
    value & opt string "test/corpus"
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Directory where shrunk repros are persisted (CSV + JSON per \
           failure). Every file pair placed here is replayed by the test \
           suite as a regression test.")

let no_persist_arg =
  Arg.(
    value & flag
    & info [ "no-persist" ] ~doc:"Report failures without writing repro files.")

let samples_arg =
  Arg.(
    value & opt int Oracle.default.Oracle.samples
    & info [ "samples" ] ~docv:"S"
        ~doc:"Monte-Carlo budget for the sampled-mrr lower-bound check.")

(* validated at parse time: a bad --jobs is a usage error (exit 124), not a
   mid-campaign failure *)
let jobs_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Ok j
    | Some j -> Error (`Msg (Printf.sprintf "JOBS must be >= 1 (got %d)" j))
    | None -> Error (`Msg (Printf.sprintf "JOBS must be an integer, got %S" s))
  in
  Arg.conv ~docv:"JOBS" (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value & opt jobs_conv Oracle.default.Oracle.jobs_hi
    & info [ "jobs"; "j" ] ~docv:"JOBS"
        ~doc:
          "Second pool width for the jobs-invariance check (every instance \
           is run at width 1 and at width JOBS; results must be \
           bit-identical). 1 disables the comparison.")

let check_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("all", Oracle.All);
             ("dynamic", Oracle.Dynamic_only);
             ("approx", Oracle.Approx_only);
             ("rrr", Oracle.Rrr_only);
           ])
        Oracle.All
    & info [ "check" ] ~docv:"SUITE"
        ~doc:
          "Which oracle suite to run per instance: $(b,all) (every \
           differential check, including the dynamic-maintenance, \
           approximation and rank-regret oracles), $(b,dynamic) (only the \
           fuzzed insert/delete/query interleavings against the \
           rebuild-from-scratch pipeline), $(b,approx) (only the \
           ε-kernel checks: kernel structure, certified regret bound, \
           ε-monotonicity, pool-width and shard-tier bit-identity), or \
           $(b,rrr) (only the rank-regret checks: brute-force d=2 \
           arrangement agreement, witness/net rank re-evaluation, sampled \
           upper-bound probes, pool-width, shard-tier and wire \
           bit-identity).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Enable observability and write a kregret-obs/v1 JSON metrics \
           snapshot to $(docv) on exit.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Enable observability and print a human-readable metrics table to \
           stderr on exit.")

let obs_term = Term.(const (fun m s -> (m, s)) $ metrics_arg $ stats_arg)

let shrink_arg =
  Arg.(
    value & opt int 400
    & info [ "shrink-attempts" ] ~docv:"A"
        ~doc:"Oracle-call budget for minimizing each failing instance.")

let quiet_arg =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress progress logging.")

let replay_arg =
  Arg.(
    value & flag
    & info [ "replay" ]
        ~doc:
          "Instead of fuzzing, replay every repro in the corpus directory \
           and report pass/fail (exit 1 on any failure). The test suite \
           does the same thing as a tier-1 regression test.")

let cmd =
  let doc = "differential fuzzing of the k-regret implementations" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Cross-checks GeoGreedy against the LP-based Greedy baseline, the \
         geometric/LP/Monte-Carlo mrr evaluators against each other, the \
         Lemma-3 candidate-tier inclusions, StoredList prefix consistency, \
         Optimal2d optimality at d=2, mrr monotonicity in k, and pool-width \
         invariance, on a deterministic stream of random instances. Failing \
         instances are shrunk (drop points, drop dimensions, reduce k, snap \
         coordinates) to minimal repros.";
      `S Manpage.s_examples;
      `Pre "  kregret_fuzz --instances 500 --seed 42\n  kregret_fuzz --instances 200 --jobs 2 --corpus test/corpus";
    ]
  in
  Cmd.v
    (Cmd.info "kregret_fuzz" ~version:"1.0.0" ~doc ~man)
    Term.(
      const run $ replay_arg $ instances_arg $ seed_arg $ corpus_arg
      $ no_persist_arg $ samples_arg $ jobs_arg $ check_arg $ shrink_arg
      $ quiet_arg $ obs_term)

let () = exit (Cmd.eval' cmd)
