(* kregret — command-line front end for the k-regret query library.

   Subcommands:
     gen       generate a synthetic dataset to CSV
     stats     candidate-set statistics (|D|, |Dsky|, |Dhappy|, |Dconv|)
     query     answer a k-regret query
     validate  cross-check the three algorithms and evaluators on a dataset *)

open Cmdliner
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Csv_io = Kregret_dataset.Csv_io
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Extreme = Kregret_hull.Extreme
module Query = Kregret.Query
module Mrr = Kregret.Mrr

(* Expected user-facing failures (bad CSV, bad parameters) should print as
   one-line errors, not cmdliner "internal error" backtraces. *)
let wrap f =
  try f () with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
      Fmt.epr "kregret: error: %s@." msg;
      exit 1

let now () = Unix.gettimeofday ()

let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* ---- shared arguments -------------------------------------------------- *)

let dist_arg =
  let doc =
    "Distribution: independent | correlated | anti_correlated | household | \
     nba | color | stocks."
  in
  Arg.(value & opt string "anti_correlated" & info [ "dist" ] ~docv:"DIST" ~doc)

let n_arg default =
  Arg.(value & opt int default & info [ "n" ] ~docv:"N" ~doc:"Number of tuples.")

let d_arg =
  Arg.(value & opt int 6 & info [ "dim" ] ~docv:"D" ~doc:"Dimensionality (synthetic only).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let k_arg =
  Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Output size of the query.")

(* Validated at parse time: a bad --jobs is a usage error (cmdliner exit
   124 with the offending value echoed), not a runtime failure. *)
let jobs_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Ok j
    | Some j -> Error (`Msg (Printf.sprintf "JOBS must be >= 1 (got %d)" j))
    | None -> Error (`Msg (Printf.sprintf "JOBS must be an integer, got %S" s))
  in
  Arg.conv ~docv:"JOBS" (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Domain pool width for the parallel hot paths (skyline, happy filter, \
     GeoGreedy scans, Greedy LPs, sampling). Defaults to $(b,KREGRET_JOBS) \
     or the machine's recommended domain count; 1 forces purely sequential \
     execution. Results are identical for every width."
  in
  Arg.(
    value & opt (some jobs_conv) None & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

let apply_jobs = function
  | None -> ()
  | Some j -> Kregret_parallel.Pool.set_jobs j

(* ---- ε-kernel pre-reduction --------------------------------------------- *)

module Kernel = Kregret_approx.Kernel

(* Validated at parse time, same policy as --jobs. *)
let approx_conv =
  let parse s =
    match float_of_string_opt (String.trim s) with
    | Some e when Float.is_finite e && e > 0. && e <= 1. -> Ok e
    | Some e -> Error (`Msg (Printf.sprintf "EPS must be in (0, 1] (got %g)" e))
    | None -> Error (`Msg (Printf.sprintf "EPS must be a number, got %S" s))
  in
  Arg.conv ~docv:"EPS" (parse, Format.pp_print_float)

let approx_arg =
  Arg.(
    value
    & opt (some approx_conv) None
    & info [ "approx" ] ~docv:"EPS"
        ~doc:
          "ε-kernel pre-reduction: before the candidate filters, keep only \
           the per-direction maxima of a direction net whose worst-case \
           regret slack is at most $(docv) (a number in (0, 1]). Shrinks \
           preprocessing dramatically at the price of approximate answers \
           with a certified additive regret bound.")

(* Reduce [ds] to its ε-kernel; identity when --approx was not given. The
   kernel line goes to stderr so CSV-emitting subcommands stay clean. *)
let apply_approx approx ds =
  match approx with
  | None -> ds
  | Some eps ->
      let r, t = timed (fun () -> Kernel.reduce ~eps ds.Dataset.points) in
      Fmt.epr
        "approx    eps=%g m=%d dirs=%d kernel=%d/%d slack<=%.4f (%.3fs)@."
        r.Kernel.eps r.Kernel.resolution r.Kernel.directions
        (Array.length r.Kernel.ids) r.Kernel.n_input r.Kernel.slack t;
      Dataset.sub ds ~indices:r.Kernel.ids

(* ---- observability ------------------------------------------------------- *)

module Obs = Kregret_obs

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Enable observability and write a kregret-obs/v1 JSON metrics \
           snapshot (counters, gauges, histograms, span tree) to $(docv) on \
           exit.")

let stats_flag =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Enable observability and print a human-readable metrics table to \
           stderr on exit.")

let obs_term = Term.(const (fun m s -> (m, s)) $ metrics_arg $ stats_flag)

(* Enable the registry before any work runs, flush on the way out (also on
   failure: a crashing run's partial counters are exactly what you want). *)
let with_obs (metrics, stats) f =
  if metrics <> None || stats then begin
    Obs.Control.set_clock Unix.gettimeofday;
    Obs.Control.set_enabled true
  end;
  Fun.protect
    ~finally:(fun () ->
      (match metrics with
      | Some path -> Obs.Export.write ~path
      | None -> ());
      if stats then Obs.Export.pp_table Format.err_formatter ())
    f

let file_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Dataset CSV (omit to generate synthetically).")

let load_or_generate file dist n d seed =
  match file with
  | Some path -> Dataset.normalize (Csv_io.load path)
  | None -> (
      match Generator.by_name dist (Rng.create seed) ~n ~d with
      | ds -> ds
      | exception Not_found ->
          Fmt.failwith "unknown distribution %S" dist)

(* ---- gen ---------------------------------------------------------------- *)

let gen_cmd =
  let run dist n d seed output = wrap @@ fun () ->
    let ds = load_or_generate None dist n d seed in
    Csv_io.save output ds;
    Fmt.pr "wrote %a to %s@." Dataset.pp_stats ds output
  in
  let output =
    Arg.(
      value & opt string "data.csv"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output CSV path.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic dataset")
    Term.(const run $ dist_arg $ n_arg 10_000 $ d_arg $ seed_arg $ output)

(* ---- stats --------------------------------------------------------------- *)

let stats_cmd =
  let run file dist n d seed approx with_conv summary jobs obs =
    wrap @@ fun () ->
    with_obs obs @@ fun () ->
    apply_jobs jobs;
    let ds = apply_approx approx (load_or_generate file dist n d seed) in
    if summary then Fmt.pr "%a@." Kregret_dataset.Stats.pp_summary ds;
    let sky, t_sky =
      timed (fun () -> Obs.Span.with_ "cli.skyline" (fun () -> Skyline.of_dataset ds))
    in
    let happy_idx, t_happy =
      timed (fun () ->
          Obs.Span.with_ "cli.happy" (fun () ->
              Happy.happy_points sky.Dataset.points))
    in
    Fmt.pr "dataset   %-16s n=%d d=%d@." ds.Dataset.name (Dataset.size ds)
      ds.Dataset.dim;
    Fmt.pr "skyline   |Dsky|=%d    (%.3fs)@." (Dataset.size sky) t_sky;
    Fmt.pr "happy     |Dhappy|=%d  (%.3fs)@." (Array.length happy_idx) t_happy;
    if with_conv then begin
      (* D_conv is a subset of D_happy and the downward hulls coincide, so
         extremality among happy points equals extremality in D *)
      let happy_pts =
        Array.to_list (Array.map (fun i -> sky.Dataset.points.(i)) happy_idx)
      in
      let conv, t_conv =
        timed (fun () -> Extreme.extreme_points happy_pts)
      in
      Fmt.pr "convex    |Dconv|=%d   (%.3fs)@." (List.length conv) t_conv
    end
  in
  let with_conv =
    Arg.(value & flag & info [ "conv" ] ~doc:"Also count hull extreme points (one LP per skyline point).")
  in
  let summary =
    Arg.(value & flag & info [ "summary" ] ~doc:"Print per-dimension statistics and correlation.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Candidate-set statistics (Table III)")
    Term.(
      const run $ file_arg $ dist_arg $ n_arg 10_000 $ d_arg $ seed_arg
      $ approx_arg $ with_conv $ summary $ jobs_arg $ obs_term)

(* ---- query ---------------------------------------------------------------- *)

let algorithm_arg =
  let algo_conv =
    Arg.enum
      [
        ("greedy", Query.Greedy_lp);
        ("geogreedy", Query.Geo_greedy);
        ("storedlist", Query.Stored_list);
        ("cube", Query.Cube);
      ]
  in
  Arg.(
    value & opt algo_conv Query.Geo_greedy
    & info [ "algorithm"; "a" ] ~docv:"ALGO"
        ~doc:"Algorithm: greedy | geogreedy | storedlist | cube.")

let candidates_arg =
  let set_conv =
    Arg.enum [ ("all", Query.All); ("sky", Query.Sky); ("happy", Query.Happy) ]
  in
  Arg.(
    value & opt set_conv Query.Happy
    & info [ "candidates"; "c" ] ~docv:"SET" ~doc:"Candidate set: all | sky | happy.")

let query_cmd =
  let run file dist n d seed k approx algorithm candidates verbose vertex_cap
      jobs obs =
    wrap @@ fun () ->
    with_obs obs @@ fun () ->
    apply_jobs jobs;
    let ds = load_or_generate file dist n d seed in
    let cand, t_pre =
      timed (fun () ->
          Obs.Span.with_ "cli.preprocess" (fun () ->
              Query.reduce (apply_approx approx ds) candidates))
    in
    let result, t_query =
      match (algorithm, vertex_cap) with
      | Query.Geo_greedy, Some cap ->
          (* hybrid mode: geometric index with an LP fallback past the cap *)
          timed (fun () ->
              Obs.Span.with_ "cli.query" @@ fun () ->
              let points = cand.Dataset.points in
              let r = Kregret.Geo_greedy.run ~max_dual_vertices:cap ~points ~k () in
              {
                Query.candidates = cand;
                order = r.Kregret.Geo_greedy.order;
                selected =
                  List.map (fun i -> points.(i)) r.Kregret.Geo_greedy.order;
                mrr = r.Kregret.Geo_greedy.mrr;
              })
      | _ ->
          timed (fun () ->
              Obs.Span.with_ "cli.query" (fun () ->
                  Query.run ~algorithm ~candidates:Query.All cand ~k))
    in
    Fmt.pr "%s on %s of %s: k=%d@."
      (Query.algorithm_name algorithm)
      (Query.candidate_set_name candidates)
      ds.Dataset.name k;
    Fmt.pr "candidates=%d  preprocess=%.3fs  query=%.3fs  total=%.3fs@."
      (Dataset.size cand) t_pre t_query (t_pre +. t_query);
    Fmt.pr "maximum regret ratio = %.6f@." result.Query.mrr;
    (match approx with
    | Some eps ->
        (* mrr above is relative to the kernel; add the net's slack for a
           bound that holds against the full dataset *)
        let slack = Kernel.slack_for ~d:ds.Dataset.dim ~eps in
        Fmt.pr "certified bound vs full data <= %.6f (kernel mrr + %.4f slack)@."
          (Float.min 1. (result.Query.mrr +. slack))
          slack
    | None -> ());
    if verbose then
      List.iteri
        (fun rank p ->
          Fmt.pr "  #%-3d %a@." (rank + 1) Kregret_geom.Vector.pp p)
        result.Query.selected
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the selected tuples.") in
  let vertex_cap =
    Arg.(
      value & opt (some int) None
      & info [ "vertex-cap" ] ~docv:"V"
          ~doc:"Hybrid mode for geogreedy: fall back to LP critical ratios once                 the dual polytope exceeds V vertices (recommended at d >= 8).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer a k-regret query")
    Term.(
      const run $ file_arg $ dist_arg $ n_arg 10_000 $ d_arg $ seed_arg $ k_arg
      $ approx_arg $ algorithm_arg $ candidates_arg $ verbose $ vertex_cap
      $ jobs_arg $ obs_term)

(* ---- sweep ----------------------------------------------------------------- *)

let sweep_cmd =
  let run file dist n d seed approx algorithm candidates ks output jobs obs =
    wrap @@ fun () ->
    with_obs obs @@ fun () ->
    apply_jobs jobs;
    let ds = load_or_generate file dist n d seed in
    let cand, t_pre =
      timed (fun () -> Query.reduce (apply_approx approx ds) candidates)
    in
    let emit out =
      Printf.fprintf out "# %s on %s of %s; candidates=%d preprocess=%.4f\n"
        (Query.algorithm_name algorithm)
        (Query.candidate_set_name candidates)
        ds.Dataset.name (Dataset.size cand) t_pre;
      Printf.fprintf out "k,mrr,query_seconds\n";
      List.iter
        (fun k ->
          let result, t_query =
            timed (fun () -> Query.run ~algorithm ~candidates:Query.All cand ~k)
          in
          Printf.fprintf out "%d,%.6f,%.6f\n" k result.Query.mrr t_query)
        ks
    in
    match output with
    | None -> emit stdout
    | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc);
        Fmt.pr "wrote sweep to %s@." path
  in
  let ks =
    Arg.(
      value
      & opt (list int) [ 10; 25; 50; 100 ]
      & info [ "ks" ] ~docv:"K,K,..." ~doc:"Comma-separated query sizes.")
  in
  let output =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write CSV here instead of stdout.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Run a k-sweep and emit CSV (one row per k)")
    Term.(
      const run $ file_arg $ dist_arg $ n_arg 10_000 $ d_arg $ seed_arg
      $ approx_arg $ algorithm_arg $ candidates_arg $ ks $ output $ jobs_arg
      $ obs_term)

(* ---- materialize ------------------------------------------------------------ *)

let materialize_cmd =
  let run file dist n d seed approx list_path max_length jobs obs =
    wrap @@ fun () ->
    with_obs obs @@ fun () ->
    apply_jobs jobs;
    let ds = load_or_generate file dist n d seed in
    let happy, t_pre =
      timed (fun () -> Query.reduce (apply_approx approx ds) Query.Happy)
    in
    let points = happy.Dataset.points in
    let sl, t_build =
      timed (fun () -> Kregret.Stored_list.preprocess ?max_length points)
    in
    Kregret.Stored_list.save sl ~points list_path;
    Fmt.pr
      "materialized %d-entry list to %s (happy: %d points in %.3fs; greedy: %.3fs)@."
      (Kregret.Stored_list.length sl)
      list_path (Dataset.size happy) t_pre t_build;
    Fmt.pr "answer queries with: kregret query-list %s -k K ...@." list_path
  in
  let list_path =
    Arg.(
      value & opt string "stored.list"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to store the list.")
  in
  let max_length =
    Arg.(
      value & opt (some int) None
      & info [ "max-length" ] ~docv:"M" ~doc:"Truncate the materialization.")
  in
  Cmd.v
    (Cmd.info "materialize"
       ~doc:"Precompute a StoredList for a dataset (Section IV-B preprocessing)")
    Term.(
      const run $ file_arg $ dist_arg $ n_arg 10_000 $ d_arg $ seed_arg
      $ approx_arg $ list_path $ max_length $ jobs_arg $ obs_term)

(* ---- query-list -------------------------------------------------------------- *)

let query_list_cmd =
  let run list_path file dist n d seed k verbose obs = wrap @@ fun () ->
    with_obs obs @@ fun () ->
    let ds = load_or_generate file dist n d seed in
    let happy = Query.reduce ds Query.Happy in
    let points = happy.Dataset.points in
    let sl = Kregret.Stored_list.load ~points list_path in
    let answer, t_query = timed (fun () -> Kregret.Stored_list.query sl ~k) in
    Fmt.pr "StoredList query k=%d: %.1fus, mrr=%.6f@." k (1e6 *. t_query)
      (Kregret.Stored_list.mrr_at sl ~k);
    if verbose then
      List.iteri
        (fun rank i ->
          Fmt.pr "  #%-3d %a@." (rank + 1) Kregret_geom.Vector.pp points.(i))
        answer
  in
  let list_path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"LIST" ~doc:"Materialized list file.")
  in
  let file_arg2 =
    Arg.(
      value
      & opt (some string) None
      & info [ "data" ] ~docv:"FILE" ~doc:"Dataset CSV the list was built from.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the tuples.")
  in
  Cmd.v
    (Cmd.info "query-list" ~doc:"Answer a k-regret query from a materialized list")
    Term.(
      const run $ list_path $ file_arg2 $ dist_arg $ n_arg 10_000 $ d_arg
      $ seed_arg $ k_arg $ verbose $ obs_term)

(* ---- rrr --------------------------------------------------------------------- *)

module Rrr = Kregret_rrr.Rrr

let rrr_cmd =
  let run file dist n d seed k budget set verbose jobs obs =
    wrap @@ fun () ->
    with_obs obs @@ fun () ->
    apply_jobs jobs;
    let ds = load_or_generate file dist n d seed in
    let points = ds.Dataset.points in
    match set with
    | Some spec ->
        (* evaluate an explicit member set instead of running the greedy *)
        let ids =
          List.map
            (fun s ->
              match int_of_string_opt (String.trim s) with
              | Some i -> i
              | None -> Fmt.failwith "--set: %S is not a row index" s)
            (String.split_on_char ',' spec)
        in
        let r, t =
          timed (fun () ->
              Obs.Span.with_ "cli.rrr" (fun () ->
                  Rrr.max_rank ~budget ~points (Array.of_list ids)))
        in
        Fmt.pr "max rank of {%s} over %s: [%d, %d]%s (%.3fs)@." spec
          ds.Dataset.name r.Rrr.lo r.Rrr.hi
          (if r.Rrr.exact then " exact" else "")
          t;
        Fmt.pr "witness direction %a attains rank %d@." Kregret_geom.Vector.pp
          r.Rrr.witness r.Rrr.lo
    | None ->
        let eng, t_build =
          timed (fun () ->
              Obs.Span.with_ "cli.rrr" (fun () ->
                  Rrr.build ~budget ~max_size:k points))
        in
        let sel, r = Rrr.query eng ~k in
        Fmt.pr "rank-regret representatives of %s: k=%d@." ds.Dataset.name k;
        Fmt.pr
          "candidates=%d  directions=%d (resolution %d)  selected=%d  \
           build=%.3fs@."
          (Array.length (Rrr.cand_ids eng))
          (Rrr.directions eng) (Rrr.resolution eng) (List.length sel) t_build;
        Fmt.pr "certified max rank in [%d, %d]%s@." r.Rrr.lo r.Rrr.hi
          (if r.Rrr.exact then " (exact)" else "");
        if verbose then begin
          Array.iteri
            (fun i (b : Rrr.rank) ->
              Fmt.pr "  prefix %-3d rank in [%d, %d]%s@." (i + 1) b.Rrr.lo
                b.Rrr.hi
                (if b.Rrr.exact then " exact" else ""))
            (Rrr.bounds eng);
          List.iteri
            (fun rank i ->
              Fmt.pr "  #%-3d row %-5d %a@." (rank + 1) i
                Kregret_geom.Vector.pp points.(i))
            sel
        end
  in
  let budget_arg =
    Arg.(
      value
      & opt int Rrr.default_budget
      & info [ "budget" ] ~docv:"DIRS"
          ~doc:
            "Direction budget for the certification net (d >= 3): the net \
             resolution is the largest grid whose direction count fits \
             $(docv). d = 2 is exact regardless.")
  in
  let set_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "set" ] ~docv:"I,J,.."
          ~doc:
            "Evaluate the certified max rank of an explicit set of row \
             indices instead of running the greedy selection.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print per-prefix bounds and the tuples.")
  in
  Cmd.v
    (Cmd.info "rrr"
       ~doc:"Rank-regret representatives: a set in the top-r of every preference")
    Term.(
      const run $ file_arg $ dist_arg $ n_arg 2_000 $ d_arg $ seed_arg $ k_arg
      $ budget_arg $ set_arg $ verbose $ jobs_arg $ obs_term)

(* ---- validate --------------------------------------------------------------- *)

let validate_cmd =
  let run file dist n d seed k jobs obs = wrap @@ fun () ->
    with_obs obs @@ fun () ->
    apply_jobs jobs;
    let ds = load_or_generate file dist n d seed in
    let report, t =
      timed (fun () ->
          Obs.Span.with_ "cli.validate" (fun () -> Kregret.Validation.run ds ~k))
    in
    Fmt.pr "%a" Kregret.Validation.pp_report report;
    Fmt.pr "(validated in %.3fs)@." t;
    if not report.Kregret.Validation.ok then exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Cross-check algorithms and evaluators")
    Term.(
      const run $ file_arg $ dist_arg $ n_arg 2_000 $ d_arg $ seed_arg $ k_arg
      $ jobs_arg $ obs_term)

let () =
  let info = Cmd.info "kregret" ~version:"1.0.0" ~doc:"k-regret queries (ICDE 2014 geometry approach)" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; stats_cmd; query_cmd; sweep_cmd; materialize_cmd;
            query_list_cmd; rrr_cmd; validate_cmd;
          ]))
