(* Serving-tier benchmark (the event-driven poller PR): one in-process
   server on a Unix-domain socket, hammered by [!serve_clients] concurrent
   clients, each issuing [!serve_reqs] query/mrr requests with ks drawn
   from a small cycle (so the LRU cache and the batcher both participate,
   exactly as they would under production fan-in).

   Reported, and emitted to BENCH_serve.json:
   - connections/sec over a sequential connect/hello/close churn loop
     (the poller's accept + live-table retire path)
   - queries/sec and per-request latency p50/p99 (milliseconds) under the
     full concurrent client load
   - the cache hit rate for the run, read from the server's own stats verb

   The CI smoke gate asserts p99 > p50 > 0 and hit rate in [0, 1]; the
   committed BENCH_serve.json documents the acceptance numbers (100+
   clients, p99 < 10 ms on n = 10^4, d = 6). *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Csv_io = Kregret_dataset.Csv_io
module Rng = Kregret_dataset.Rng
module Serve = Kregret_serve
module Client = Serve.Client
module Server = Serve.Server
module Json = Serve.Json

let serve_n = ref 10_000
let serve_d = ref 6
let serve_clients = ref 100
let serve_reqs = ref 100
let serve_churn = ref 2_000
let max_length = 32

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let or_die what = function
  | Ok v -> v
  | Error m ->
      Fmt.epr "serve bench: %s: %s@." what m;
      exit 1

let run () =
  header "serve — event-driven poller under concurrent load";
  let n = !serve_n and d = !serve_d in
  let clients = !serve_clients and reqs = !serve_reqs in
  note "n=%d d=%d, %d clients x %d requests, %d-conn churn" n d clients reqs
    !serve_churn;
  (* the dataset: anti-correlated (the paper's hard case), saved to a CSV
     the server loads through its normal path *)
  let csv = Filename.temp_file "kregret_bench_serve" ".csv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove csv with Sys_error _ -> ())
    (fun () ->
      Csv_io.save csv
        (Generator.by_name "anti_correlated" (Rng.create bench_seed) ~n ~d);
      let socket_path = Server.temp_socket_path () in
      let server =
        Server.start_exn
          (Server.config ~cache_capacity:256 ~max_length ~socket_path ())
      in
      Fun.protect
        ~finally:(fun () -> Server.stop server)
        (fun () ->
          let c0 = or_die "connect" (Client.connect ~socket_path ()) in
          ignore (or_die "load" (Client.load c0 ~name:"bench" ~path:csv));
          or_die "wait_ready" (Client.wait_ready ~attempts:6000 c0 ~name:"bench");
          (* ks cycle over the materialized prefix: the first pass per k is
             a miss (batched among racing clients), the rest are hits *)
          let ks = Array.init 10 (fun i -> 1 + (i mod max_length)) in
          (* churn: sequential connect / hello / close — the accept and
             retire path of the poller, no request work *)
          let churn = !serve_churn in
          let t_churn =
            time_only (fun () ->
                for _ = 1 to churn do
                  match Client.connect ~socket_path () with
                  | Ok c -> Client.close c
                  | Error m ->
                      Fmt.epr "serve bench: churn connect: %s@." m;
                      exit 1
                done)
          in
          let conns_per_sec = float_of_int churn /. t_churn in
          (* the concurrent load: every request latency recorded *)
          let lat = Array.make_matrix clients reqs 0. in
          let failures = Atomic.make 0 in
          let t_load =
            time_only (fun () ->
                let threads =
                  Array.init clients (fun ci ->
                      Thread.create
                        (fun () ->
                          match Client.connect ~socket_path () with
                          | Error _ -> Atomic.incr failures
                          | Ok c ->
                              Fun.protect
                                ~finally:(fun () -> Client.close c)
                                (fun () ->
                                  for r = 0 to reqs - 1 do
                                    let k = ks.((ci + r) mod Array.length ks) in
                                    let t0 = Unix.gettimeofday () in
                                    (match
                                       Client.query c ~name:"bench" ~k
                                     with
                                    | Ok _ -> ()
                                    | Error _ -> Atomic.incr failures);
                                    lat.(ci).(r) <- Unix.gettimeofday () -. t0
                                  done))
                        ())
                in
                Array.iter Thread.join threads)
          in
          if Atomic.get failures > 0 then begin
            Fmt.epr "serve bench: %d failed requests@." (Atomic.get failures);
            exit 1
          end;
          let all = Array.concat (Array.to_list lat) in
          Array.sort compare all;
          let p50 = 1000. *. percentile all 0.50 in
          let p99 = 1000. *. percentile all 0.99 in
          let total = clients * reqs in
          let qps = float_of_int total /. t_load in
          (* the server's own verdict on cache efficiency *)
          let stats = or_die "stats" (Client.stats c0) in
          let cache_int name =
            Option.bind (Json.member "cache" stats) (Json.member name)
            |> Fun.flip Option.bind Json.to_int
            |> Option.value ~default:0
          in
          let hits = cache_int "hits" and misses = cache_int "misses" in
          let hit_rate =
            if hits + misses = 0 then 0.
            else float_of_int hits /. float_of_int (hits + misses)
          in
          Client.close c0;
          cells [ 18; 12; 12; 12; 12; 12 ]
            [ "metric"; "conns/s"; "qps"; "p50 ms"; "p99 ms"; "hit rate" ];
          cells [ 18; 12; 12; 12; 12; 12 ]
            [
              "serve";
              Printf.sprintf "%.0f" conns_per_sec;
              Printf.sprintf "%.0f" qps;
              Printf.sprintf "%.3f" p50;
              Printf.sprintf "%.3f" p99;
              Printf.sprintf "%.3f" hit_rate;
            ];
          emit_json ~id:"serve"
            ~extra:
              [
                ("n", Int n);
                ("d", Int d);
                ("clients", Int clients);
                ("requests_per_client", Int reqs);
              ]
            [
              [
                ("clients", Int clients);
                ("total_requests", Int total);
                ("conns_per_sec", Float conns_per_sec);
                ("qps", Float qps);
                ("p50_ms", Float p50);
                ("p99_ms", Float p99);
                ("cache_hit_rate", Float hit_rate);
                ("cache_hits", Int hits);
                ("cache_misses", Int misses);
                ("wall_seconds", Float t_load);
              ];
            ]))
