(* Shared plumbing for the paper-table harness: wall-clock timing, dataset
   caching, candidate-set preparation, and fixed-width table printing. *)

module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy

let bench_seed = 2014 (* ICDE 2014 *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_only f = snd (time f)

(* --repeat N: median-of-N reporting for every section that opts in via
   [time_median]. First-run jitter (cold caches, lazy pool spin-up, GC
   state) used to land verbatim in the BENCH JSONs; with N > 1 one warmup
   run is discarded, N timed runs follow, and the median is reported. *)
let repeat = ref 1

let time_median f =
  let n = max 1 !repeat in
  if n = 1 then time f
  else begin
    ignore (f ());
    (* warmup, discarded *)
    let r, t0 = time f in
    let ts = Array.make n t0 in
    for i = 1 to n - 1 do
      ts.(i) <- time_only f
    done;
    Array.sort compare ts;
    (r, ts.(n / 2))
  end

let time_median_only f = snd (time_median f)

(* ---- dataset cache ------------------------------------------------------ *)

type tiers = {
  full : Dataset.t;
  sky : Dataset.t;
  happy : Dataset.t;
  t_sky : float;  (** seconds to compute the skyline *)
  t_happy : float;  (** seconds for the happy filter, on top of the skyline *)
}

let cache : (string, tiers) Hashtbl.t = Hashtbl.create 16

let tiers_of ?(d = 6) ~n name =
  let key = Printf.sprintf "%s/%d/%d" name n d in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let full = Generator.by_name name (Rng.create bench_seed) ~n ~d in
      let sky, t_sky = time (fun () -> Skyline.of_dataset full) in
      let (happy_idx, t_happy) =
        time (fun () -> Happy.happy_points sky.Dataset.points)
      in
      let happy =
        { (Dataset.sub sky ~indices:happy_idx) with Dataset.name = name ^ "/happy" }
      in
      let t = { full; sky; happy; t_sky; t_happy } in
      Hashtbl.replace cache key t;
      t

(* the four simulated real datasets, at the bench's laptop scale *)
let real_scale = ref 10_000
let real_datasets () =
  List.map (fun name -> (name, tiers_of ~n:!real_scale name)) Generator.real_like_names

(* ---- table printing ------------------------------------------------------ *)

let header title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '-')

let note fmt = Fmt.pr ("  # " ^^ fmt ^^ "@.")

let cells widths row =
  List.iteri
    (fun i cell ->
      let w = try List.nth widths i with _ -> 12 in
      Fmt.pr "%-*s" (w + 2) cell)
    row;
  Fmt.pr "@."

let seconds t =
  if t < 1e-4 then Printf.sprintf "%.1fus" (1e6 *. t)
  else if t < 0.1 then Printf.sprintf "%.2fms" (1e3 *. t)
  else Printf.sprintf "%.3fs" t

(* ---- machine-readable output (BENCH_<id>.json) --------------------------- *)

(* A self-contained JSON writer: the bench tracks per-row timings across PRs
   (see ISSUE 1), and a hand-rolled printer avoids a yojson dependency. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list
  | Raw of string
      (** pre-rendered JSON spliced verbatim (e.g. a Kregret_obs export) *)

let rec pp_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Raw s -> Buffer.add_string buf (String.trim s)
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.9g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string buf "\\\""
          | '\\' -> Buffer.add_string buf "\\\\"
          | '\n' -> Buffer.add_string buf "\\n"
          | c when Char.code c < 0x20 ->
              Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
          | c -> Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string buf ", ";
          pp_json buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          pp_json buf (String k);
          Buffer.add_string buf ": ";
          pp_json buf v)
        fields;
      Buffer.add_char buf '}'

let git_rev =
  lazy
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let rev = try String.trim (input_line ic) with End_of_file -> "" in
       (match Unix.close_process_in ic with
       | Unix.WEXITED 0 when rev <> "" -> rev
       | _ -> "unknown")
     with _ -> "unknown")

(* Destination directory for BENCH_<id>.json files ($BENCH_JSON_DIR or cwd). *)
let json_dir () =
  match Sys.getenv_opt "BENCH_JSON_DIR" with Some d when d <> "" -> d | _ -> "."

(* [emit_json ~id rows extra] writes BENCH_<id>.json carrying the rows of
   the section's text table plus run metadata: jobs count, git revision,
   timestamp. One file per section id; reruns overwrite. When observability
   is on (bench --metrics), each file additionally embeds the cumulative
   kregret-obs/v1 snapshot at emission time under a "metrics" key. *)
let emit_json ~id ?(extra = []) rows =
  let metrics =
    if Kregret_obs.Control.enabled () then
      [ ("metrics", Raw (Kregret_obs.Export.to_json ())) ]
    else []
  in
  let doc =
    Obj
      ([
         ("id", String id);
         ("git_rev", String (Lazy.force git_rev));
         ("jobs", Int (Kregret_parallel.Pool.get_jobs ()));
         ("generated_at", Float (Unix.gettimeofday ()));
       ]
      @ extra @ metrics
      @ [ ("rows", List (List.map (fun r -> Obj r) rows)) ])
  in
  let buf = Buffer.create 1024 in
  pp_json buf doc;
  Buffer.add_char buf '\n';
  let path = Filename.concat (json_dir ()) ("BENCH_" ^ id ^ ".json") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Fmt.pr "  # wrote %s@." path
