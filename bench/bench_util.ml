(* Shared plumbing for the paper-table harness: wall-clock timing, dataset
   caching, candidate-set preparation, and fixed-width table printing. *)

module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy

let bench_seed = 2014 (* ICDE 2014 *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_only f = snd (time f)

(* ---- dataset cache ------------------------------------------------------ *)

type tiers = {
  full : Dataset.t;
  sky : Dataset.t;
  happy : Dataset.t;
  t_sky : float;  (** seconds to compute the skyline *)
  t_happy : float;  (** seconds for the happy filter, on top of the skyline *)
}

let cache : (string, tiers) Hashtbl.t = Hashtbl.create 16

let tiers_of ?(d = 6) ~n name =
  let key = Printf.sprintf "%s/%d/%d" name n d in
  match Hashtbl.find_opt cache key with
  | Some t -> t
  | None ->
      let full = Generator.by_name name (Rng.create bench_seed) ~n ~d in
      let sky, t_sky = time (fun () -> Skyline.of_dataset full) in
      let (happy_idx, t_happy) =
        time (fun () -> Happy.happy_points sky.Dataset.points)
      in
      let happy =
        { (Dataset.sub sky ~indices:happy_idx) with Dataset.name = name ^ "/happy" }
      in
      let t = { full; sky; happy; t_sky; t_happy } in
      Hashtbl.replace cache key t;
      t

(* the four simulated real datasets, at the bench's laptop scale *)
let real_scale = ref 10_000
let real_datasets () =
  List.map (fun name -> (name, tiers_of ~n:!real_scale name)) Generator.real_like_names

(* ---- table printing ------------------------------------------------------ *)

let header title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '-')

let note fmt = Fmt.pr ("  # " ^^ fmt ^^ "@.")

let cells widths row =
  List.iteri
    (fun i cell ->
      let w = try List.nth widths i with _ -> 12 in
      Fmt.pr "%-*s" (w + 2) cell)
    row;
  Fmt.pr "@."

let seconds t =
  if t < 1e-4 then Printf.sprintf "%.1fus" (1e6 *. t)
  else if t < 0.1 then Printf.sprintf "%.2fms" (1e3 *. t)
  else Printf.sprintf "%.3fs" t
