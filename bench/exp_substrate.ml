(* Substrate benchmark: the three skyline algorithms and the two candidate
   reductions across the synthetic distributions. Not a paper figure — the
   paper treats skyline computation as given preprocessing — but it
   documents which implementation the pipeline should pick, and how the
   distribution drives candidate sizes (the mechanism behind Table III). *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Skyline = Kregret_skyline.Skyline
module Bbs = Kregret_skyline.Bbs
module Happy = Kregret_happy.Happy

let run () =
  header "Substrate -- skyline algorithms across distributions (n=20000, d=4)";
  let widths = [ 16; 8; 10; 10; 10; 10 ] in
  cells widths [ "distribution"; "|sky|"; "BNL"; "SFS"; "BBS"; "happy-pass" ];
  List.iter
    (fun name ->
      let t = tiers_of ~d:4 ~n:20_000 name in
      let points = t.full.Dataset.points in
      let sky_bnl, t_bnl = time (fun () -> Skyline.bnl points) in
      let sky_sfs, t_sfs = time (fun () -> Skyline.sfs points) in
      let sky_bbs, t_bbs = time (fun () -> Bbs.of_points points) in
      assert (Array.length sky_bnl = Array.length sky_sfs);
      assert (Array.length sky_bbs = Array.length sky_sfs);
      let sky_points = Array.map (fun i -> points.(i)) sky_sfs in
      let _, t_happy = time (fun () -> Happy.happy_points sky_points) in
      cells widths
        [
          name;
          string_of_int (Array.length sky_sfs);
          seconds t_bnl;
          seconds t_sfs;
          seconds t_bbs;
          seconds t_happy;
        ])
    [ "correlated"; "independent"; "anti_correlated" ];
  note "expected: identical skyline sizes across algorithms; relative speed";
  note "depends on skyline size vs R-tree build cost; the happy pass is";
  note "quadratic in |sky|"
