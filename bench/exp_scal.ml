(* The Section V-C scalability anecdote: "on 5 million tuples, Greedy took 3
   hours, GeoGreedy a few minutes, StoredList under a second". Laptop-scaled
   to the largest n that keeps the whole bench run in minutes; the deliverable
   is the ordering and the orders-of-magnitude gaps. *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Stored_list = Kregret.Stored_list

let scal_n = ref 30_000
let scal_k = ref 100

let run () =
  header
    (Printf.sprintf
       "Scalability anecdote -- anti-correlated n=%d d=6, k=%d (paper: n=5M, k=100)"
       !scal_n !scal_k);
  let t = tiers_of ~d:6 ~n:!scal_n "anti_correlated" in
  Fmt.pr "preprocessing: skyline %s (|Dsky|=%d), happy +%s (|Dhappy|=%d)@."
    (seconds t.t_sky) (Dataset.size t.sky) (seconds t.t_happy)
    (Dataset.size t.happy);
  let points = t.happy.Dataset.points in
  let k = !scal_k in
  let sl, t_build =
    time (fun () -> Stored_list.preprocess ~max_length:(k + 28) points)
  in
  let t_sl = time_only (fun () -> ignore (Stored_list.query sl ~k)) in
  let geo, t_geo = time (fun () -> Geo_greedy.run ~points ~k ()) in
  let lp, t_lp = time (fun () -> Greedy_lp.run ~points ~k ()) in
  let widths = [ 12; 12; 14; 10 ] in
  cells widths [ "algorithm"; "query"; "preprocess"; "mrr" ];
  cells widths [ "Greedy"; seconds t_lp; "-"; Printf.sprintf "%.4f" lp.Greedy_lp.mrr ];
  cells widths
    [ "GeoGreedy"; seconds t_geo; "-"; Printf.sprintf "%.4f" geo.Geo_greedy.mrr ];
  cells widths
    [
      "StoredList";
      seconds t_sl;
      seconds t_build;
      Printf.sprintf "%.4f" (Stored_list.mrr_at sl ~k);
    ];
  note "expected: query time StoredList (us) << GeoGreedy << Greedy;";
  note "identical mrr for all three"
