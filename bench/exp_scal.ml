(* The Section V-C scalability anecdote: "on 5 million tuples, Greedy took 3
   hours, GeoGreedy a few minutes, StoredList under a second". Laptop-scaled
   to the largest n that keeps the whole bench run in minutes; the deliverable
   is the ordering and the orders-of-magnitude gaps.

   Since ISSUE 1 the preprocessing pipeline (skyline + happy filter) fans
   out over the domain pool, so this section also measures the parallel
   speedup: it times the preprocessing at jobs=1 and at the configured pool
   width, prints both, and records everything in BENCH_scal.json so the
   perf trajectory is trackable across PRs. *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Pool = Kregret_parallel.Pool
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Stored_list = Kregret.Stored_list

let scal_n = ref 30_000
let scal_k = ref 100

(* skyline + happy timings at a given pool width; bypasses the tiers cache
   so the two widths measure the same fresh computation. Median-of-N under
   --repeat so the recorded speedup_samewidth is not first-run jitter. *)
let preprocess_at ~jobs full =
  let prev = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs prev) @@ fun () ->
  let sky, t_sky = time_median (fun () -> Skyline.of_dataset full) in
  let happy_idx, t_happy =
    time_median (fun () -> Happy.happy_points sky.Dataset.points)
  in
  (sky, happy_idx, t_sky, t_happy)

let run () =
  let jobs = Pool.get_jobs () in
  header
    (Printf.sprintf
       "Scalability anecdote -- anti-correlated n=%d d=6, k=%d, jobs=%d \
        (paper: n=5M, k=100)"
       !scal_n !scal_k jobs);
  let full =
    Generator.by_name "anti_correlated" (Rng.create bench_seed) ~n:!scal_n ~d:6
  in
  let sky1, happy1_idx, t_sky_seq, t_happy_seq = preprocess_at ~jobs:1 full in
  let sky, happy_idx, t_sky, t_happy =
    if jobs = 1 then (sky1, happy1_idx, t_sky_seq, t_happy_seq)
    else preprocess_at ~jobs full
  in
  assert (happy_idx = happy1_idx);
  (* determinism contract, cheap to assert here *)
  let seq_total = t_sky_seq +. t_happy_seq in
  let par_total = t_sky +. t_happy in
  (* "samewidth": the same machine, the same computation, jobs=N against
     jobs=1 — the scaling number ISSUE 6 gates on (>= 1.0 at jobs=2) *)
  let speedup = if par_total > 0. then seq_total /. par_total else 1. in
  Fmt.pr
    "preprocessing(jobs=1): skyline %s (|Dsky|=%d), happy +%s (|Dhappy|=%d)@."
    (seconds t_sky_seq) (Dataset.size sky1) (seconds t_happy_seq)
    (Array.length happy1_idx);
  if jobs > 1 then
    Fmt.pr "preprocessing(jobs=%d): skyline %s, happy +%s  (speedup %.2fx)@."
      jobs (seconds t_sky) (seconds t_happy) speedup;
  let happy =
    { (Dataset.sub sky ~indices:happy_idx) with Dataset.name = "anti/happy" }
  in
  let points = happy.Dataset.points in
  let k = !scal_k in
  let sl, t_build =
    time (fun () -> Stored_list.preprocess ~max_length:(k + 28) points)
  in
  let t_sl = time_only (fun () -> ignore (Stored_list.query sl ~k)) in
  let geo, t_geo = time (fun () -> Geo_greedy.run ~points ~k ()) in
  let lp, t_lp = time (fun () -> Greedy_lp.run ~points ~k ()) in
  let widths = [ 12; 12; 14; 10 ] in
  cells widths [ "algorithm"; "query"; "preprocess"; "mrr" ];
  cells widths [ "Greedy"; seconds t_lp; "-"; Printf.sprintf "%.4f" lp.Greedy_lp.mrr ];
  cells widths
    [ "GeoGreedy"; seconds t_geo; "-"; Printf.sprintf "%.4f" geo.Geo_greedy.mrr ];
  cells widths
    [
      "StoredList";
      seconds t_sl;
      seconds t_build;
      Printf.sprintf "%.4f" (Stored_list.mrr_at sl ~k);
    ];
  note "expected: query time StoredList (us) << GeoGreedy << Greedy;";
  note "identical mrr for all three";
  let pre_row ~phase ~jobs ~secs ~size =
    [
      ("phase", String phase);
      ("jobs", Int jobs);
      ("seconds", Float secs);
      ("output_size", Int size);
    ]
  in
  let algo_row ~name ~query ~pre ~mrr =
    [
      ("algorithm", String name);
      ("query_seconds", Float query);
      ("preprocess_seconds", match pre with Some p -> Float p | None -> Null);
      ("mrr", Float mrr);
    ]
  in
  emit_json ~id:"scal"
    ~extra:
      [
        ("n", Int !scal_n);
        ("d", Int 6);
        ("k", Int k);
        ("happy_size", Int (Array.length happy_idx));
        ("repeat", Int !Bench_util.repeat);
        ("preprocess_seconds_jobs1", Float seq_total);
        ("preprocess_seconds_jobsN", Float par_total);
        ("preprocess_speedup", Float speedup);
        ("speedup_samewidth", Float speedup);
      ]
    [
      pre_row ~phase:"skyline" ~jobs:1 ~secs:t_sky_seq ~size:(Dataset.size sky1);
      pre_row ~phase:"happy" ~jobs:1 ~secs:t_happy_seq
        ~size:(Array.length happy1_idx);
      pre_row ~phase:"skyline" ~jobs ~secs:t_sky ~size:(Dataset.size sky);
      pre_row ~phase:"happy" ~jobs ~secs:t_happy ~size:(Array.length happy_idx);
      algo_row ~name:"Greedy" ~query:t_lp ~pre:None ~mrr:lp.Greedy_lp.mrr;
      algo_row ~name:"GeoGreedy" ~query:t_geo ~pre:None ~mrr:geo.Geo_greedy.mrr;
      algo_row ~name:"StoredList" ~query:t_sl ~pre:(Some t_build)
        ~mrr:(Stored_list.mrr_at sl ~k);
    ]
