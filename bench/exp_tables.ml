(* Tables I/II (the worked car example) and Table III (candidate-set
   statistics on the four simulated real datasets). *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Extreme = Kregret_hull.Extreme
module Toy = Kregret.Toy
module Mrr = Kregret.Mrr

let table12 () =
  header "Tables I & II -- car example";
  let widths = [ 22; 10; 10; 10 ] in
  cells widths [ "Car"; "f(.3,.7)"; "f(.5,.5)"; "f(.7,.3)" ];
  Array.iteri
    (fun i row ->
      cells widths
        (Toy.names.(i) :: Array.to_list (Array.map (Printf.sprintf "%.3f") row)))
    (Toy.utility_table ());
  let data = Array.to_list Toy.cars in
  let selected = [ Toy.cars.(1); Toy.cars.(2) ] in
  Fmt.pr "mrr({p2,p3}) over the finite class = %.3f   (paper: 0.115)@."
    (Mrr.finite_class ~weights:Toy.weights ~data ~selected)

(* paper's Table III, for reference columns *)
let paper_table3 =
  [
    ("household", (903_077, 9_832, 1_332, 927));
    ("nba", (21_962, 447, 75, 65));
    ("color", (68_040, 1_023, 151, 124));
    ("stocks", (122_574, 3_042, 449, 396));
  ]

let table3 () =
  header "Table III -- |Dsky|, |Dhappy|, |Dconv| on simulated real datasets";
  note "simulators at n=%d (paper used the original full-size datasets);" !real_scale;
  note "paper's absolute counts shown for shape comparison";
  let widths = [ 10; 4; 8; 7; 8; 7; 22 ] in
  cells widths [ "dataset"; "d"; "n"; "|Dsky|"; "|Dhappy|"; "|Dconv|"; "paper (sky/happy/conv)" ];
  List.iter
    (fun (name, t) ->
      let conv, _ =
        time (fun () -> Extreme.extreme_points (Dataset.to_list t.happy))
      in
      let _, (pn, ps, ph, pc) =
        (name, List.assoc name paper_table3)
      in
      cells widths
        [
          name;
          string_of_int t.full.Dataset.dim;
          string_of_int (Dataset.size t.full);
          string_of_int (Dataset.size t.sky);
          string_of_int (Dataset.size t.happy);
          string_of_int (List.length conv);
          Printf.sprintf "%d: %d/%d/%d" pn ps ph pc;
        ])
    (real_datasets ());
  note "expected shape: |Dsky| >> |Dhappy| >= |Dconv| (Lemma 3)"
