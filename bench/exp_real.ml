(* Figures 7-11: the real-dataset sweeps.

   - Fig 7: mrr vs k, algorithms on D_happy (all three algorithms return the
     same answer, so one mrr column per dataset).
   - Fig 8: mrr vs k on D_sky (StoredList excluded, as in the paper).
   - Fig 9: query time vs k on D_happy (Greedy / GeoGreedy / StoredList).
   - Fig 10: query time vs k on D_sky (Greedy / GeoGreedy).
   - Fig 11: total time vs k on D_happy (query + preprocessing; StoredList's
     includes materialization).

   Sizes are laptop-scaled (DESIGN.md section 5): what must reproduce is the
   ordering and the growth trends, not the absolute milliseconds. *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Stored_list = Kregret.Stored_list
module Mrr = Kregret.Mrr

let ks = [ 10; 25; 50; 100 ]

let fig7 () =
  header "Figure 7 -- mrr vs k on Dhappy (same value for all 3 algorithms)";
  let widths = 6 :: List.map (fun _ -> 12) (real_datasets ()) in
  cells widths ("k" :: List.map fst (real_datasets ()));
  List.iter
    (fun k ->
      let row =
        List.map
          (fun (_, t) ->
            let r = Geo_greedy.run ~points:t.happy.Dataset.points ~k () in
            Printf.sprintf "%.4f" r.Geo_greedy.mrr)
          (real_datasets ())
      in
      cells widths (string_of_int k :: row))
    ks;
  note "expected: decreasing in k on every dataset"

let fig8 () =
  header "Figure 8 -- mrr vs k on Dsky (Greedy = GeoGreedy)";
  let widths = 6 :: List.map (fun _ -> 12) (real_datasets ()) in
  cells widths ("k" :: List.map fst (real_datasets ()));
  List.iter
    (fun k ->
      let row =
        List.map
          (fun (_, t) ->
            let r = Geo_greedy.run ~points:t.sky.Dataset.points ~k () in
            (* report vs the full dataset so Figs 7 and 8 are comparable *)
            let selected =
              List.map (fun i -> t.sky.Dataset.points.(i)) r.Geo_greedy.order
            in
            Printf.sprintf "%.4f"
              (Mrr.geometric ~data:(Dataset.to_list t.full) ~selected))
          (real_datasets ())
      in
      cells widths (string_of_int k :: row))
    ks;
  note "expected: pointwise >= the Fig 7 values (happy candidates are better)"

let query_times ~candidates k =
  let points = candidates.Dataset.points in
  let t_geo = time_only (fun () -> ignore (Geo_greedy.run ~points ~k ())) in
  let t_lp = time_only (fun () -> ignore (Greedy_lp.run ~points ~k ())) in
  (t_lp, t_geo)

let fig9 () =
  header "Figure 9 -- query time vs k on Dhappy";
  List.iter
    (fun (name, t) ->
      Fmt.pr "@.[%s]  |Dhappy| = %d@." name (Dataset.size t.happy);
      let widths = [ 6; 12; 12; 12 ] in
      cells widths [ "k"; "Greedy"; "GeoGreedy"; "StoredList" ];
      let sl = Stored_list.preprocess ~max_length:128 t.happy.Dataset.points in
      List.iter
        (fun k ->
          let t_lp, t_geo = query_times ~candidates:t.happy k in
          let t_sl = time_only (fun () -> ignore (Stored_list.query sl ~k)) in
          cells widths
            [ string_of_int k; seconds t_lp; seconds t_geo; seconds t_sl ])
        ks)
    (real_datasets ());
  note "expected: StoredList << GeoGreedy << Greedy, gaps growing with k"

let fig10 () =
  header "Figure 10 -- query time vs k on Dsky";
  List.iter
    (fun (name, t) ->
      Fmt.pr "@.[%s]  |Dsky| = %d@." name (Dataset.size t.sky);
      let widths = [ 6; 12; 12 ] in
      cells widths [ "k"; "Greedy"; "GeoGreedy" ];
      List.iter
        (fun k ->
          let t_lp, t_geo = query_times ~candidates:t.sky k in
          cells widths [ string_of_int k; seconds t_lp; seconds t_geo ])
        ks)
    (real_datasets ());
  note "expected: slower than the Fig 9 rows (larger candidate sets)"

let fig11 () =
  header "Figure 11 -- total time (preprocessing + query) vs k on Dhappy";
  List.iter
    (fun (name, t) ->
      let t_candidates = t.t_sky +. t.t_happy in
      Fmt.pr "@.[%s]  happy-set construction = %s@." name (seconds t_candidates);
      let widths = [ 6; 12; 12; 12 ] in
      cells widths [ "k"; "Greedy"; "GeoGreedy"; "StoredList" ];
      let sl_build =
        time_only (fun () ->
            ignore (Stored_list.preprocess ~max_length:128 t.happy.Dataset.points))
      in
      let sl = Stored_list.preprocess ~max_length:128 t.happy.Dataset.points in
      List.iter
        (fun k ->
          let t_lp, t_geo = query_times ~candidates:t.happy k in
          let t_sl = time_only (fun () -> ignore (Stored_list.query sl ~k)) in
          cells widths
            [
              string_of_int k;
              seconds (t_candidates +. t_lp);
              seconds (t_candidates +. t_geo);
              seconds (t_candidates +. sl_build +. t_sl);
            ])
        ks)
    (real_datasets ());
  note "expected: StoredList pays its materialization once (largest total),";
  note "GeoGreedy total < Greedy total"
