(* Figures 12 and 13: synthetic anti-correlated sweeps over d, n, k, and the
   large-k regime. Paper defaults: n = 10,000, d = 6, k = 10; candidate set
   is D_happy throughout (Section V-C). Our default n is laptop-scaled; the
   sweeps keep the paper's proportions. *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp

let base_n = ref 10_000
let base_d = 6
let base_k = 10

let anti ~n ~d = tiers_of ~d ~n "anti_correlated"

let run_both ~points ~k =
  let geo, t_geo = time (fun () -> Geo_greedy.run ~points ~k ()) in
  let lp, t_lp = time (fun () -> Greedy_lp.run ~points ~k ()) in
  assert (abs_float (geo.Geo_greedy.mrr -. lp.Greedy_lp.mrr) < 1e-6);
  (geo.Geo_greedy.mrr, t_lp, t_geo)

let widths = [ 8; 10; 10; 12; 12 ]
let head label = cells widths [ label; "|Dhappy|"; "mrr"; "t(Greedy)"; "t(GeoGreedy)" ]

let sweep label values tiers_of_value k_of_value =
  head label;
  List.iter
    (fun v ->
      let t = tiers_of_value v in
      let k = k_of_value v in
      let points = t.happy.Dataset.points in
      let mrr, t_lp, t_geo = run_both ~points ~k in
      cells widths
        [
          string_of_int v;
          string_of_int (Array.length points);
          Printf.sprintf "%.4f" mrr;
          seconds t_lp;
          seconds t_geo;
        ])
    values

let fig12_13ab () =
  header "Figures 12(a)/13(a) -- vary d (n fixed, k = 10, anti-correlated)";
  sweep "d" [ 2; 3; 4; 5; 6; 7 ]
    (fun d -> anti ~n:!base_n ~d)
    (fun _ -> base_k);
  note "expected: mrr grows with d (modulo seed noise); query time grows with d";
  header "Figures 12(b)/13(b) -- vary n (d = 6, k = 10)";
  sweep "n"
    [ !base_n / 4; !base_n / 2; !base_n; !base_n * 2 ]
    (fun n -> anti ~n ~d:base_d)
    (fun _ -> base_k);
  note "expected: mrr roughly flat in n; query time grows with n"

let fig12_13c () =
  header "Figures 12(c)/13(c) -- vary k (d = 6, n fixed)";
  let t = anti ~n:!base_n ~d:base_d in
  sweep "k" [ 10; 25; 50; 100 ] (fun _ -> t) (fun k -> k);
  note "expected: mrr decreases with k; Greedy's time grows much faster"

let fig12_13d () =
  header "Figure 12(d) -- very large k (GeoGreedy; Greedy would take hours)";
  let t = anti ~n:!base_n ~d:base_d in
  let widths = [ 8; 10; 12 ] in
  cells widths [ "k"; "mrr"; "t(GeoGreedy)" ];
  List.iter
    (fun k ->
      let r, t_geo =
        time (fun () -> Geo_greedy.run ~points:t.happy.Dataset.points ~k ())
      in
      cells widths
        [ string_of_int k; Printf.sprintf "%.4f" r.Geo_greedy.mrr; seconds t_geo ])
    [ 100; 150; 200 ];
  note "expected: mrr well under 9%% at large k (paper Fig 12(d))";
  header "Figure 13(d) -- Greedy vs GeoGreedy head-to-head at larger k";
  let t = anti ~n:(!base_n / 2) ~d:base_d in
  sweep "k" [ 50; 100 ] (fun _ -> t) (fun k -> k);
  note "expected: GeoGreedy an order of magnitude faster"
