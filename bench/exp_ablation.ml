(* Ablations of the paper's design choices (DESIGN.md section 7):

   1. candidate set: full D vs D_sky vs D_happy — isolates the Section III-B
      contribution;
   2. champion cache on/off — isolates the Section IV-A incremental index
      (identical output, different work);
   3. geometric cr vs LP cr inside the same greedy skeleton — isolates the
      Lemma 1 speed-up from the candidate-set effect. *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Mrr = Kregret.Mrr

let run () =
  let n = 10_000 and k = 25 in
  let t = tiers_of ~d:6 ~n "anti_correlated" in
  let full_list = Dataset.to_list t.full in

  header "Ablation 1 -- candidate set (GeoGreedy, anti-correlated, k=25)";
  let widths = [ 10; 12; 12; 12 ] in
  cells widths [ "set"; "size"; "mrr(full D)"; "query time" ];
  List.iter
    (fun (label, ds) ->
      let points = ds.Dataset.points in
      let r, t_q = time (fun () -> Geo_greedy.run ~points ~k ()) in
      let selected = List.map (fun i -> points.(i)) r.Geo_greedy.order in
      let mrr = Mrr.geometric ~data:full_list ~selected in
      cells widths
        [
          label;
          string_of_int (Dataset.size ds);
          Printf.sprintf "%.4f" mrr;
          seconds t_q;
        ])
    [ ("D", t.full); ("Dsky", t.sky); ("Dhappy", t.happy) ];
  note "expected: same-or-better mrr from Dhappy at a fraction of the time";

  header "Ablation 2 -- incremental champion cache (Section IV-A index)";
  let widths = [ 10; 12; 12; 14 ] in
  cells widths [ "cache"; "query time"; "rescans"; "mrr" ];
  List.iter
    (fun (label, flag) ->
      let r, t_q =
        time (fun () ->
            Geo_greedy.run ~use_champion_cache:flag
              ~points:t.happy.Dataset.points ~k ())
      in
      cells widths
        [
          label;
          seconds t_q;
          string_of_int r.Geo_greedy.rescans;
          Printf.sprintf "%.6f" r.Geo_greedy.mrr;
        ])
    [ ("on", true); ("off", false) ];
  note "expected: identical mrr; far fewer rescans and less time with cache";

  header "Ablation 3 -- cr computation: geometric (Lemma 1) vs LP, same skeleton";
  let widths = [ 12; 12; 12 ] in
  cells widths [ "cr method"; "query time"; "mrr" ];
  let geo, t_geo =
    time (fun () -> Geo_greedy.run ~points:t.happy.Dataset.points ~k ())
  in
  let lp, t_lp =
    time (fun () -> Greedy_lp.run ~points:t.happy.Dataset.points ~k ())
  in
  cells widths [ "geometric"; seconds t_geo; Printf.sprintf "%.6f" geo.Geo_greedy.mrr ];
  cells widths [ "LP"; seconds t_lp; Printf.sprintf "%.6f" lp.Greedy_lp.mrr ];
  note "expected: identical mrr; the geometry does the same work faster";

  header "Ablation 4 -- hybrid LP fallback on the face-count explosion (d=9)";
  let t9 = tiers_of ~n:10_000 "color" in
  let pts9 = t9.happy.Dataset.points in
  let k9 = 25 in
  let widths = [ 22; 12; 12; 14 ] in
  cells widths [ "mode"; "query time"; "mrr"; "fallback at" ];
  List.iter
    (fun (label, cap) ->
      let r, t_q =
        time (fun () -> Geo_greedy.run ?max_dual_vertices:cap ~points:pts9 ~k:k9 ())
      in
      cells widths
        [
          label;
          seconds t_q;
          Printf.sprintf "%.6f" r.Geo_greedy.mrr;
          (match r.Geo_greedy.lp_fallback_at with
          | None -> "-"
          | Some s -> string_of_int s);
        ])
    [ ("pure geometric", None); ("hybrid (cap 4000)", Some 4_000) ];
  let lp9, t_lp9 = time (fun () -> Greedy_lp.run ~points:pts9 ~k:k9 ()) in
  cells widths
    [ "pure LP (Greedy)"; seconds t_lp9; Printf.sprintf "%.6f" lp9.Greedy_lp.mrr; "-" ];
  note "expected: identical mrr everywhere; the hybrid caps the d=9 blow-up"
