(* Rank-regret representatives vs GeoGreedy — the ISSUE 10 gate.

   Anti-correlated families at d in {2, 3, 4}. Per dimension the
   rank-regret engine (lib/rrr, skyline candidates) and GeoGreedy (happy
   candidates, the k-regret engine) each grow a selection; per size s we
   report both sets' certified max-rank intervals [lo, hi] (GeoGreedy's
   set evaluated by Rrr.max_rank — same certificate machinery) and both
   sets' true regret ratio, plus the smallest GeoGreedy prefix matching
   the rrr prefix's certified rank (the matched-quality size column).

   What the table shows: the rank greedy wins at s = 1 by construction
   (it picks the best singleton — a compromise point), but that very
   pick is myopic: the best pair is usually two extremes, so from s >= 2
   GeoGreedy's extreme-seeking, regret-driven selection often reaches a
   given rank guarantee with fewer rows. The engine's value is the
   certificate machinery (exact at d = 2, sandwich above), which prices
   any selection — including GeoGreedy's — not beating GeoGreedy at
   coverage.

   Gates (the CI rrr-smoke job trips on both):
   - bound respected: sampled directions never realize a rank above the
     final prefix's certified hi (tolerant tie margin) — exit 1 on any
     violation;
   - the per-call latency distribution of Rrr.max_rank satisfies
     p99 > p50 > 0 (asserted by CI over BENCH_rrr.json).

   Numbers land in BENCH_rrr.json. *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Vector = Kregret_geom.Vector
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Geo_greedy = Kregret.Geo_greedy
module Mrr = Kregret.Mrr
module Rrr = Kregret_rrr.Rrr

let rrr_n = ref 10_000
let rrr_k = ref 8
let rrr_ds = [ 2; 3; 4 ]
let rrr_samples = 200

(* tolerant tie margin for the sampled-rank gate: dot products along
   different parenthesizations may round a tie either way *)
let tie = 1e-6

(* realized rank of [set] under [w], counting only clear beats — a lower
   bound on the exact rank, so it can never exceed a correct certificate *)
let sampled_rank ~points ~set w =
  let best = ref neg_infinity in
  Array.iter
    (fun s ->
      let v = Vector.dot w points.(s) in
      if v > !best then best := v)
    set;
  let c = ref 0 in
  Array.iter (fun q -> if Vector.dot w q > !best +. tie then incr c) points;
  1 + !c

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let run () =
  let n = !rrr_n and k = !rrr_k in
  header
    (Printf.sprintf "ISSUE 10: rank-regret representatives (anti_correlated n=%d k=%d)" n k);
  note "rrr = lib/rrr greedy over the skyline; geo = GeoGreedy over happy";
  note "[lo, hi] = certified max-rank interval; exact (lo = hi) at d = 2";
  note "geo@rank = smallest GeoGreedy prefix certified at least as good";
  cells [ 4; 4; 10; 10; 10; 10; 10; 10; 10 ]
    [
      "d"; "s"; "rrr_lo"; "rrr_hi"; "geo_lo"; "geo_hi"; "geo@rank";
      "mrr_rrr"; "mrr_geo";
    ];
  let rows = ref [] in
  let violations = ref 0 in
  let latencies = ref [] in
  let max_rank_timed ~points set =
    let r, t = time (fun () -> Rrr.max_rank ~points set) in
    latencies := t :: !latencies;
    r
  in
  List.iter
    (fun d ->
      let full =
        Generator.by_name "anti_correlated" (Rng.create bench_seed) ~n ~d
      in
      let points = full.Dataset.points in
      (* the rrr engine, once per dimension; prefixes compose *)
      let eng, t_build = time_median (fun () -> Rrr.build ~max_size:k points) in
      let order = Rrr.order eng in
      let bounds = Rrr.bounds eng in
      let size = Rrr.size eng in
      (* GeoGreedy on its own funnel, mapped back to original rows *)
      let sky_idx = Skyline.naive points in
      let sky_rows = Array.map (fun i -> points.(i)) sky_idx in
      let hap_idx = Happy.happy_points sky_rows in
      let hap_rows = Array.map (fun i -> sky_rows.(i)) hap_idx in
      let orig_of_hap = Array.map (fun i -> sky_idx.(i)) hap_idx in
      let geo = Geo_greedy.run ~points:hap_rows ~k () in
      let geo_order =
        Array.of_list
          (List.map (fun i -> orig_of_hap.(i)) geo.Geo_greedy.order)
      in
      let sky_list = Array.to_list sky_rows in
      let mrr_of set =
        Mrr.geometric ~data:sky_list
          ~selected:(List.map (fun i -> points.(i)) (Array.to_list set))
      in
      (* per-size certificates for both selections *)
      let geo_ranks =
        Array.init (Array.length geo_order) (fun s ->
            max_rank_timed ~points (Array.sub geo_order 0 (s + 1)))
      in
      let geo_size_for target =
        let rec find s =
          if s >= Array.length geo_ranks then None
          else if geo_ranks.(s).Rrr.hi <= target then Some (s + 1)
          else find (s + 1)
        in
        find 0
      in
      for s = 1 to size do
        let b = bounds.(s - 1) in
        let rset = Array.sub order 0 s in
        let gset =
          Array.sub geo_order 0 (min s (Array.length geo_order))
        in
        let g = geo_ranks.(Array.length gset - 1) in
        let matched = geo_size_for b.Rrr.hi in
        let mrr_rrr = mrr_of rset and mrr_geo = mrr_of gset in
        cells [ 4; 4; 10; 10; 10; 10; 10; 10; 10 ]
          [
            string_of_int d;
            string_of_int s;
            string_of_int b.Rrr.lo;
            string_of_int b.Rrr.hi;
            string_of_int g.Rrr.lo;
            string_of_int g.Rrr.hi;
            (match matched with Some m -> string_of_int m | None -> ">" ^ string_of_int (Array.length geo_order));
            Printf.sprintf "%.5f" mrr_rrr;
            Printf.sprintf "%.5f" mrr_geo;
          ];
        rows :=
          [
            ("d", Int d);
            ("n", Int n);
            ("size", Int s);
            ("rrr_lo", Int b.Rrr.lo);
            ("rrr_hi", Int b.Rrr.hi);
            ("rrr_exact", Bool b.Rrr.exact);
            ("geo_lo", Int g.Rrr.lo);
            ("geo_hi", Int g.Rrr.hi);
            ( "geo_size_at_matched_rank",
              match matched with Some m -> Int m | None -> Null );
            ("mrr_rrr", Float mrr_rrr);
            ("mrr_geo", Float mrr_geo);
            ("build_seconds", Float t_build);
          ]
          :: !rows
      done;
      (* bound gate: no sampled direction may realize a rank above the
         final prefix's certified hi *)
      let final = bounds.(size - 1) in
      let rset = Array.sub order 0 size in
      let rng = Rng.create (bench_seed + d) in
      for _ = 1 to rrr_samples do
        let w = Mrr.random_direction rng d in
        let r = sampled_rank ~points ~set:rset w in
        if r > final.Rrr.hi then begin
          incr violations;
          note "VIOLATION: d=%d sampled rank %d above certified hi %d" d r
            final.Rrr.hi
        end
      done)
    rrr_ds;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let p50 = 1000. *. percentile lat 0.50 in
  let p99 = 1000. *. percentile lat 0.99 in
  note "max_rank latency over %d calls: p50 %.3f ms, p99 %.3f ms"
    (Array.length lat) p50 p99;
  emit_json ~id:"rrr"
    ~extra:
      [
        ("dist", String "anti_correlated");
        ("n", Int n);
        ("k", Int k);
        ("dims", List (List.map (fun d -> Int d) rrr_ds));
        ("samples_per_dim", Int rrr_samples);
        ("bound_violations", Int !violations);
        ("max_rank_calls", Int (Array.length lat));
        ("p50_ms", Float p50);
        ("p99_ms", Float p99);
      ]
    (List.rev !rows);
  if !violations > 0 then begin
    Fmt.epr "exp_rrr: %d sampled rank(s) above the certificate@." !violations;
    exit 1
  end
