(* The ISSUE 9 gate: ε-kernel candidate reduction vs the exact pipeline.

   One synthetic family (anti-correlated, d=3 — the adversarial case for
   skyline-based preprocessing: n grows, the skyline stays small, and the
   exact SFS pass dominates end-to-end cost). For each n the exact
   pipeline (SFS skyline + happy filter + StoredList materialization)
   runs once; each ε then runs the kernel pipeline
   (Kregret_approx.Pipeline.run) and we report

   - preprocess speedup (exact seconds / approx seconds),
   - the true mrr of both selections, evaluated by Mrr.geometric over the
     exact skyline (max utility over D equals max utility over sky(D),
     so the skyline is a lossless stand-in for the full data), and
   - the certified bound the approx pipeline advertises
     (kernel-relative mrr + net slack, capped at 1).

   The section exits non-zero if any measured approx mrr exceeds its
   certificate — that is the bound-respected assert the CI approx-smoke
   job trips on. Numbers land in BENCH_approx.json. *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Mrr = Kregret.Mrr
module Kernel = Kregret_approx.Kernel
module Pipeline = Kregret_approx.Pipeline

let approx_ns = ref [ 10_000; 100_000; 1_000_000 ]
let approx_k = ref 10
let approx_eps = [ 0.05; 0.1; 0.2 ]
let approx_d = 3

(* numerical headroom for the bound assert: both sides are exact
   evaluations, but computed along different floating-point paths *)
let bound_tol = 1e-9

let run () =
  let k = !approx_k in
  header
    (Printf.sprintf
       "ISSUE 9: epsilon-kernel reduction (anti_correlated d=%d k=%d)"
       approx_d k);
  note "exact = SFS skyline + happy + StoredList; approx = kernel first";
  note "mrr columns are true values over the full data (via its skyline)";
  cells [ 9; 6; 6; 8; 10; 10; 9; 10; 10; 10; 9 ]
    [
      "n"; "eps"; "dirs"; "kernel"; "exact_pre"; "approx_pre"; "speedup";
      "mrr_exact"; "mrr_apx"; "cert"; "ok";
    ];
  let rows = ref [] in
  let violations = ref 0 in
  List.iter
    (fun n ->
      let full =
        Generator.by_name "anti_correlated" (Rng.create bench_seed) ~n
          ~d:approx_d
      in
      let points = full.Dataset.points in
      (* exact pipeline, once per n, shared by every eps *)
      let (sky, happy_pts, exact_stored), t_exact =
        time_median (fun () ->
            let sky = Skyline.of_dataset full in
            let happy_idx = Happy.happy_points sky.Dataset.points in
            let happy_pts =
              Array.map (fun i -> sky.Dataset.points.(i)) happy_idx
            in
            (sky, happy_pts, Stored_list.preprocess happy_pts))
      in
      let sky_list = Array.to_list sky.Dataset.points in
      let exact_sel =
        List.map (fun i -> happy_pts.(i)) (Stored_list.query exact_stored ~k)
      in
      let mrr_exact = Mrr.geometric ~data:sky_list ~selected:exact_sel in
      List.iter
        (fun eps ->
          let p, t_approx = time_median (fun () -> Pipeline.run ~eps points) in
          let sel_ids, _ = Pipeline.query p ~k in
          let approx_sel = List.map (fun i -> points.(i)) sel_ids in
          let mrr_approx =
            if approx_sel = [] then 1.
            else Mrr.geometric ~data:sky_list ~selected:approx_sel
          in
          let cert = Pipeline.certified_bound p ~k in
          let ok = mrr_approx <= cert +. bound_tol in
          if not ok then incr violations;
          let r = p.Pipeline.reduction in
          let kernel_size = Array.length r.Kernel.ids in
          let speedup = t_exact /. Float.max 1e-9 t_approx in
          cells [ 9; 6; 6; 8; 10; 10; 9; 10; 10; 10; 9 ]
            [
              string_of_int n;
              Printf.sprintf "%.2f" eps;
              string_of_int r.Kernel.directions;
              Printf.sprintf "%d" kernel_size;
              seconds t_exact;
              seconds t_approx;
              Printf.sprintf "%.1fx" speedup;
              Printf.sprintf "%.5f" mrr_exact;
              Printf.sprintf "%.5f" mrr_approx;
              Printf.sprintf "%.5f" cert;
              (if ok then "yes" else "VIOLATED");
            ];
          rows :=
            [
              ("n", Int n);
              ("eps", Float eps);
              ("resolution", Int r.Kernel.resolution);
              ("directions", Int r.Kernel.directions);
              ("kernel_size", Int kernel_size);
              ("skyline_size", Int (Dataset.size sky));
              ("exact_preprocess_seconds", Float t_exact);
              ("approx_preprocess_seconds", Float t_approx);
              ("speedup", Float speedup);
              ("mrr_exact", Float mrr_exact);
              ("mrr_approx", Float mrr_approx);
              ("mrr_error_vs_exact", Float (mrr_approx -. mrr_exact));
              ("advertised_slack", Float r.Kernel.slack);
              ("certified_bound", Float cert);
              ("within_bound", Bool ok);
            ]
            :: !rows)
        approx_eps)
    !approx_ns;
  emit_json ~id:"approx"
    ~extra:
      [
        ("dist", String "anti_correlated");
        ("d", Int approx_d);
        ("k", Int k);
      ]
    (List.rev !rows);
  if !violations > 0 then begin
    Fmt.epr "exp_approx: %d certified-bound violation(s)@." !violations;
    exit 1
  end
