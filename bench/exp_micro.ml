(* Bechamel micro-benchmarks: one statistically-measured kernel per paper
   artifact, sized so a single iteration is micro/millisecond scale. The
   paper-shape numbers come from the harness sections; these isolate the
   per-operation costs behind them. *)

open Bechamel
open Toolkit
module Dataset = Kregret_dataset.Dataset
module Dual_polytope = Kregret_hull.Dual_polytope
module Regret_lp = Kregret_lp.Regret_lp
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Geo_greedy = Kregret.Geo_greedy
module Greedy_lp = Kregret.Greedy_lp
module Stored_list = Kregret.Stored_list

let tests () =
  let t = Bench_util.tiers_of ~d:5 ~n:4_000 "anti_correlated" in
  let happy = t.Bench_util.happy.Dataset.points in
  let small =
    Array.init (min 150 (Array.length happy)) (fun i -> happy.(i))
  in
  let selected =
    (* boundary points first, per the library's precondition *)
    List.map (fun i -> small.(i)) (Geo_greedy.boundary_seeds small 5)
    @ List.filteri (fun i _ -> i mod 10 = 0) (Array.to_list small)
  in
  let dp = Dual_polytope.create ~dim:5 () in
  List.iter (fun p -> ignore (Dual_polytope.insert dp p)) selected;
  let probe = happy.(Array.length happy - 1) in
  let sl = Stored_list.preprocess ~max_length:32 small in
  let full_points = t.Bench_util.full.Dataset.points in
  let sample2k = Array.init (min 2_000 (Array.length full_points)) (fun i -> full_points.(i)) in
  [
    Test.make ~name:"lemma1/cr-geometric"
      (Staged.stage (fun () -> Dual_polytope.critical_ratio dp probe));
    Test.make ~name:"lemma1/cr-lp"
      (Staged.stage (fun () -> Regret_lp.critical_ratio ~selected probe));
    Test.make ~name:"tab3/skyline-sfs-2k"
      (Staged.stage (fun () -> Skyline.sfs sample2k));
    Test.make ~name:"tab3/subjugation-pair"
      (Staged.stage (fun () -> Happy.subjugates small.(0) small.(1)));
    Test.make ~name:"fig7/geogreedy-k10-150pts"
      (Staged.stage (fun () -> Geo_greedy.run ~points:small ~k:10 ()));
    Test.make ~name:"fig9/greedy-k10-150pts"
      (Staged.stage (fun () -> Greedy_lp.run ~points:small ~k:10 ()));
    Test.make ~name:"fig9/storedlist-query-k10"
      (Staged.stage (fun () -> Stored_list.query sl ~k:10));
  ]

let run () =
  Bench_util.header "Micro-benchmarks (bechamel, monotonic clock per call)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"kregret" ~fmt:"%s %s" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  let clock = Hashtbl.find merged (Measure.label Instance.monotonic_clock) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock [] in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) -> x
        | _ -> nan
      in
      Fmt.pr "  %-36s %12.1f ns/call@." name ns)
    (List.sort compare rows)
