(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md section 6 for the experiment index).

   Usage:
     dune exec bench/main.exe                 # everything, default scales
     dune exec bench/main.exe -- fig9 fig10   # selected sections
     dune exec bench/main.exe -- --quick all  # smaller scales (CI-friendly)
     dune exec bench/main.exe -- --smoke scal # tiny scales (seconds; CI smoke)
     dune exec bench/main.exe -- --jobs 4 scal# pool width for parallel paths
     dune exec bench/main.exe -- --repeat 5 kernel  # median-of-5 timings
     dune exec bench/main.exe -- --metrics m.json scal  # obs snapshot on exit

   [--jobs N] sizes the domain pool (default: KREGRET_JOBS or the number of
   cores). [--repeat N] makes sections that time through
   Bench_util.time_median report the median of N runs after one discarded
   warmup. Sections additionally emit machine-readable BENCH_<id>.json files
   (per-row timings, jobs count, git rev) alongside the text tables — see
   Bench_util.emit_json.

   Section ids: table12 table3 fig7 fig8 fig9 fig10 fig11 fig12 fig12c fig13
   scal ablation micro kernel approx rrr update serve. *)

let sections : (string * (unit -> unit)) list =
  [
    ("table12", Exp_tables.table12);
    ("table3", Exp_tables.table3);
    ("fig7", Exp_real.fig7);
    ("fig8", Exp_real.fig8);
    ("fig9", Exp_real.fig9);
    ("fig10", Exp_real.fig10);
    ("fig11", Exp_real.fig11);
    ("fig12", Exp_synth.fig12_13ab);
    ("fig12c", Exp_synth.fig12_13c);
    ("fig13", Exp_synth.fig12_13d);
    ("scal", Exp_scal.run);
    ("ablation", Exp_ablation.run);
    ("ext", Exp_ext.run);
    ("substrate", Exp_substrate.run);
    ("micro", Exp_micro.run);
    ("kernel", Exp_kernel.run);
    ("approx", Exp_approx.run);
    ("rrr", Exp_rrr.run);
    ("update", Exp_update.run);
    ("serve", Exp_serve.run);
  ]

let aliases = [ ("tab1", "table12"); ("tab3", "table3"); ("ablat", "ablation") ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --jobs N / --metrics PATH: handled before any section runs *)
  let metrics = ref None in
  let args =
    let rec strip acc = function
      | "--jobs" :: n :: rest -> (
          match int_of_string_opt n with
          | Some j when j >= 1 ->
              Kregret_parallel.Pool.set_jobs j;
              strip acc rest
          | _ ->
              Fmt.epr "--jobs expects a positive integer, got %S@." n;
              exit 2)
      | "--jobs" :: [] ->
          Fmt.epr "--jobs expects a positive integer@.";
          exit 2
      | "--metrics" :: path :: rest ->
          metrics := Some path;
          strip acc rest
      | "--metrics" :: [] ->
          Fmt.epr "--metrics expects a file path@.";
          exit 2
      | "--repeat" :: n :: rest -> (
          match int_of_string_opt n with
          | Some r when r >= 1 ->
              Bench_util.repeat := r;
              strip acc rest
          | _ ->
              Fmt.epr "--repeat expects a positive integer, got %S@." n;
              exit 2)
      | "--repeat" :: [] ->
          Fmt.epr "--repeat expects a positive integer@.";
          exit 2
      | a :: rest -> strip (a :: acc) rest
      | [] -> List.rev acc
    in
    strip [] args
  in
  (match !metrics with
  | None -> ()
  | Some _ ->
      Kregret_obs.Control.set_clock Unix.gettimeofday;
      Kregret_obs.Control.set_enabled true);
  let quick = List.mem "--quick" args in
  let smoke = List.mem "--smoke" args in
  let args =
    List.filter (fun a -> a <> "--quick" && a <> "--smoke" && a <> "all") args
  in
  if quick then begin
    Bench_util.real_scale := 2_000;
    Exp_synth.base_n := 2_000;
    Exp_scal.scal_n := 10_000;
    Exp_scal.scal_k := 50;
    Exp_approx.approx_ns := [ 2_000; 20_000 ];
    Exp_rrr.rrr_n := 3_000;
    Exp_update.update_n := 2_000;
    Exp_update.update_ops := 500;
    Exp_serve.serve_n := 2_000;
    Exp_serve.serve_clients := 8;
    Exp_serve.serve_reqs := 50;
    Exp_serve.serve_churn := 500
  end;
  if smoke then begin
    (* tiny scales: every section in seconds, for CI on jobs=1 and jobs=2 *)
    Bench_util.real_scale := 500;
    Exp_synth.base_n := 500;
    Exp_scal.scal_n := 2_000;
    Exp_scal.scal_k := 20;
    Exp_kernel.kernel_n := 2_000;
    Exp_kernel.kernel_k := 20;
    Exp_approx.approx_ns := [ 2_000 ];
    Exp_rrr.rrr_n := 800;
    Exp_rrr.rrr_k := 6;
    Exp_update.update_n := 500;
    Exp_update.update_ops := 120;
    Exp_serve.serve_n := 500;
    Exp_serve.serve_clients := 8;
    Exp_serve.serve_reqs := 20;
    Exp_serve.serve_churn := 100
  end;
  let wanted =
    match args with
    | [] -> List.map fst sections
    | names ->
        List.map
          (fun a -> match List.assoc_opt a aliases with Some x -> x | None -> a)
          names
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Fmt.epr "unknown section %S; known: %s@." name
            (String.concat " " (List.map fst sections));
          exit 2)
    wanted;
  (match !metrics with
  | None -> ()
  | Some path ->
      Kregret_obs.Export.write ~path;
      Fmt.pr "  # wrote %s@." path);
  Fmt.pr "@.[bench completed in %.1fs]@." (Unix.gettimeofday () -. t0)
