(* The ISSUE 6 gate: flat SoA kernels vs the pre-PR boxed paths.

   Two layers, one instance (anti-correlated n=10^4 d=6 k=50 at full
   scale):

   - micro: the four kernel shapes (dot sweep, dominance sweep, slack
     sweep, blocked champion scan) timed boxed vs flat;
   - end-to-end: the preprocessing pipeline (SFS skyline + happy filter)
     with local copies of the pre-PR boxed implementations — naive dot,
     boxed rows, fixed 64-chunk splitting — against the library's flat
     path, at jobs=1, plus the flat path at jobs=2 for speedup_samewidth.

   The boxed reference copies are differential oracles, kept verbatim from
   the pre-PR sources: do not "optimise" them. Every run cross-checks the
   two paths for identical results (skyline indices, happy indices,
   champion rows bit for bit, GeoGreedy selection across jobs 1/2) and the
   section exits non-zero on any mismatch — that is the equivalence assert
   the CI kernel-smoke job trips on. The perf numbers land in
   BENCH_kernel.json for the CI floor checks. *)

open Bench_util
module Vector = Kregret_geom.Vector
module Flat = Kregret_geom.Flat
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Dominance = Kregret_skyline.Dominance
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Pool = Kregret_parallel.Pool
module Geo_greedy = Kregret.Geo_greedy

let kernel_n = ref 10_000
let kernel_k = ref 50
let kernel_d = 6

(* ---- pre-PR boxed reference paths --------------------------------------- *)

(* the pre-PR Vector.dot: naive left-to-right loop *)
let ref_dot u v =
  let acc = ref 0. in
  for i = 0 to Array.length u - 1 do
    acc := !acc +. (u.(i) *. v.(i))
  done;
  !acc

(* pre-PR SFS: boxed Dominance.compare, fixed 64-chunk splitting *)
let ref_sfs_pass points idxs =
  let window = ref [] in
  List.iter
    (fun i ->
      let excluded =
        List.exists
          (fun j ->
            match Dominance.compare points.(j) points.(i) with
            | Dominance.Dominates | Dominance.Equal -> true
            | Dominance.Dominated | Dominance.Incomparable -> false)
          !window
      in
      if not excluded then window := i :: !window)
    idxs;
  List.rev !window

let ref_sfs points =
  let n = Array.length points in
  let order = Array.init n Fun.id in
  let score = Array.map Vector.sum points in
  Array.sort (fun i j -> compare score.(j) score.(i)) order;
  let survivors =
    Pool.map_reduce
      ~chunk_size:(Pool.default_chunk_size ~n)
      ~lo:0 ~hi:n
      ~map:(fun a b ->
        let idxs = ref [] in
        for i = b - 1 downto a do
          idxs := order.(i) :: !idxs
        done;
        ref_sfs_pass points !idxs)
      ~reduce:(fun acc chunk -> acc @ chunk)
      []
  in
  let result = Array.of_list (ref_sfs_pass points survivors) in
  Array.sort compare result;
  result

(* pre-PR happy screen: boxed vertex lists, List.for_all membership *)
let ref_happy ?(eps = 1e-9) points =
  let n = Array.length points in
  let vertex_sets = Array.make n [] in
  Pool.parallel_for
    ~chunk_size:(Pool.default_chunk_size ~n)
    ~lo:0 ~hi:n
    (fun i -> vertex_sets.(i) <- Happy.cut_box_vertices ~eps points.(i));
  let probe_order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare (Vector.sum points.(b)) (Vector.sum points.(a)))
    probe_order;
  let on_all_hyperplanes q p =
    if Vector.sum q <= 1. +. eps then abs_float (Vector.sum p -. 1.) <= eps
    else Vector.equal ~eps p q
  in
  let keep = Array.make n false in
  Pool.parallel_for
    ~chunk_size:(Pool.default_chunk_size ~n)
    ~lo:0 ~hi:n
    (fun i ->
      let p = points.(i) in
      let subjugated = ref false in
      Array.iter
        (fun j ->
          if (not !subjugated) && j <> i then begin
            let q = points.(j) in
            if
              (not (Vector.equal ~eps:0. q p))
              && List.for_all
                   (fun w -> ref_dot w p <= 1. +. eps)
                   vertex_sets.(j)
              && not (on_all_hyperplanes q p)
            then subjugated := true
          end)
        probe_order;
      keep.(i) <- not !subjugated);
  let out = ref [] in
  for i = n - 1 downto 0 do
    if keep.(i) then out := i :: !out
  done;
  Array.of_list !out

(* boxed champion scan: per candidate, fold the boxed vertex rows with the
   first-wins replacement rule — the pre-PR Geo_greedy re-scan shape *)
let ref_champions vrows crows out_row out_val =
  Array.iteri
    (fun j c ->
      let br = ref 0 and bx = ref (ref_dot vrows.(0) c) in
      for v = 1 to Array.length vrows - 1 do
        let x = ref_dot vrows.(v) c in
        if not (!bx >= x) then begin
          br := v;
          bx := x
        end
      done;
      out_row.(j) <- !br;
      out_val.(j) <- !bx)
    crows

(* ---- section ------------------------------------------------------------- *)

let fail_equivalence what =
  Fmt.epr "kernel: flat path diverges from the boxed reference (%s)@." what;
  exit 3

let with_jobs jobs f =
  let prev = Pool.get_jobs () in
  Pool.set_jobs jobs;
  Fun.protect ~finally:(fun () -> Pool.set_jobs prev) f

let run () =
  let n = !kernel_n and d = kernel_d and k = !kernel_k in
  let jobs = Pool.get_jobs () in
  header
    (Printf.sprintf
       "Flat-kernel gate -- anti-correlated n=%d d=%d, k=%d, repeat=%d \
        (ISSUE 6)"
       n d k !repeat);
  let full = Generator.by_name "anti_correlated" (Rng.create bench_seed) ~n ~d in
  let pts = full.Dataset.points in
  (* ---- micro kernels: fixed rep counts keep each timing in the ms range *)
  let fp = Flat.of_rows pts in
  let q = pts.(0) in
  let sink = ref 0. in
  (* dot_sweep: the 4-wide unrolled dot against the pre-PR naive loop on
     the same boxed rows (the other kernels below measure the layout) *)
  let t_dot_boxed =
    time_median_only (fun () ->
        for _ = 1 to 50 do
          Array.iter (fun p -> sink := !sink +. ref_dot p q) pts
        done)
  in
  let t_dot_flat =
    time_median_only (fun () ->
        for _ = 1 to 50 do
          Array.iter (fun p -> sink := !sink +. Vector.dot_unsafe p q) pts
        done)
  in
  let ndom = min n 1_500 in
  let isink = ref 0 in
  let t_dom_boxed =
    time_median_only (fun () ->
        for i = 0 to ndom - 1 do
          for j = 0 to ndom - 1 do
            if Dominance.compare pts.(i) pts.(j) = Dominance.Dominates then
              incr isink
          done
        done)
  in
  let t_dom_flat =
    time_median_only (fun () ->
        for i = 0 to ndom - 1 do
          for j = 0 to ndom - 1 do
            if Dominance.compare_flat fp i j = Dominance.Dominates then
              incr isink
          done
        done)
  in
  let slack_out = Array.make n 0. in
  let t_slack_boxed =
    time_median_only (fun () ->
        for _ = 1 to 50 do
          for i = 0 to n - 1 do
            slack_out.(i) <- ref_dot pts.(i) q -. 1.
          done
        done)
  in
  let t_slack_flat =
    time_median_only (fun () ->
        for _ = 1 to 50 do
          Flat.slacks fp ~normal:q ~offset:1. ~out:slack_out
        done)
  in
  (* champion scan: vertex-set-sized matrix vs the full candidate set *)
  let nv = min 192 n in
  let vrows = Array.sub pts 0 nv in
  let vflat = Flat.of_rows vrows in
  let targets = Array.init n Fun.id in
  let row_boxed = Array.make n 0 and val_boxed = Array.make n 0. in
  let row_flat = Array.make n 0 and val_flat = Array.make n 0. in
  let t_champ_boxed =
    time_median_only (fun () -> ref_champions vrows pts row_boxed val_boxed)
  in
  let t_champ_flat =
    time_median_only (fun () ->
        ignore
          (Flat.champions ~vertices:vflat ~cands:fp targets ~tlo:0 ~thi:n
             ~out_row:row_flat ~out_val:val_flat))
  in
  for j = 0 to n - 1 do
    if
      row_flat.(j) <> row_boxed.(j)
      || Int64.bits_of_float val_flat.(j)
         <> Int64.bits_of_float val_boxed.(j)
    then fail_equivalence (Printf.sprintf "champion of candidate %d" j)
  done;
  (* ---- end-to-end preprocess: boxed pre-PR pipeline vs library flat path *)
  let e2e_boxed () =
    let sky = ref_sfs pts in
    let sky_pts = Array.map (fun i -> pts.(i)) sky in
    (sky, ref_happy sky_pts)
  in
  let e2e_flat () =
    let sky = Skyline.sfs pts in
    let sky_pts = Array.map (fun i -> pts.(i)) sky in
    (sky, Happy.happy_points sky_pts)
  in
  let (sky_b, happy_b), t_e2e_boxed =
    with_jobs 1 (fun () -> time_median e2e_boxed)
  in
  let (sky_f, happy_f), t_e2e_flat =
    with_jobs 1 (fun () -> time_median e2e_flat)
  in
  if sky_b <> sky_f then fail_equivalence "skyline indices";
  if happy_b <> happy_f then fail_equivalence "happy indices";
  let (sky2, happy2), t_e2e_flat2 =
    with_jobs 2 (fun () -> time_median e2e_flat)
  in
  if sky2 <> sky_f || happy2 <> happy_f then
    fail_equivalence "preprocess at jobs=2";
  (* GeoGreedy selections must agree across pool widths *)
  let happy_pts = Array.map (fun i -> pts.(sky_f.(i))) happy_f in
  let geo_at j =
    with_jobs j (fun () ->
        Geo_greedy.run ~points:happy_pts ~k:(min k (Array.length happy_pts)) ())
  in
  let g1 = geo_at 1 and g2 = geo_at 2 in
  if g1.Geo_greedy.order <> g2.Geo_greedy.order then
    fail_equivalence "GeoGreedy selection across jobs 1/2";
  let speedup_e2e = if t_e2e_flat > 0. then t_e2e_boxed /. t_e2e_flat else 1. in
  let samewidth =
    if t_e2e_flat2 > 0. then t_e2e_flat /. t_e2e_flat2 else 1.
  in
  let widths = [ 22; 12; 12; 10 ] in
  cells widths [ "kernel"; "boxed"; "flat"; "speedup" ];
  let micro_row name tb tf =
    cells widths
      [
        name;
        seconds tb;
        seconds tf;
        Printf.sprintf "%.2fx" (if tf > 0. then tb /. tf else 1.);
      ];
    ( name,
      [
        ("kind", String "micro");
        ("name", String name);
        ("boxed_seconds", Float tb);
        ("flat_seconds", Float tf);
        ("speedup", Float (if tf > 0. then tb /. tf else 1.));
      ] )
  in
  let r_dot = micro_row "dot_sweep" t_dot_boxed t_dot_flat in
  let r_dom = micro_row "dominance_sweep" t_dom_boxed t_dom_flat in
  let r_slack = micro_row "slack_sweep" t_slack_boxed t_slack_flat in
  let r_champ = micro_row "champion_scan" t_champ_boxed t_champ_flat in
  let rows_micro = [ r_dot; r_dom; r_slack; r_champ ] in
  cells widths
    [
      "preprocess(j=1)";
      seconds t_e2e_boxed;
      seconds t_e2e_flat;
      Printf.sprintf "%.2fx" speedup_e2e;
    ];
  cells widths
    [
      "preprocess(j=2)";
      "-";
      seconds t_e2e_flat2;
      Printf.sprintf "%.2fx sw" samewidth;
    ];
  note "equivalence: boxed and flat paths agreed on every result";
  note "gate: speedup(j=1) >= 1.5x full scale; samewidth(j=2/j=1) >= 1.0";
  ignore sink;
  ignore isink;
  emit_json ~id:"kernel"
    ~extra:
      [
        ("n", Int n);
        ("d", Int d);
        ("k", Int k);
        ("repeat", Int !repeat);
        ("jobs", Int jobs);
        ("equivalence_ok", Bool true);
        ("sky_size", Int (Array.length sky_f));
        ("happy_size", Int (Array.length happy_f));
        ("preprocess_boxed_seconds_jobs1", Float t_e2e_boxed);
        ("preprocess_flat_seconds_jobs1", Float t_e2e_flat);
        ("preprocess_flat_seconds_jobs2", Float t_e2e_flat2);
        ("speedup_e2e", Float speedup_e2e);
        ("speedup_samewidth", Float samewidth);
      ]
    (List.map snd rows_micro
    @ [
        [
          ("kind", String "e2e");
          ("name", String "preprocess");
          ("boxed_seconds", Float t_e2e_boxed);
          ("flat_seconds", Float t_e2e_flat);
          ("flat_seconds_jobs2", Float t_e2e_flat2);
          ("speedup", Float speedup_e2e);
          ("speedup_samewidth", Float samewidth);
        ];
      ])
