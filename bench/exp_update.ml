(* Dynamic-updates experiment (the dynamic-datasets PR): incremental
   insert/delete maintenance (Kregret.Dynamic) vs rebuilding the whole
   pipeline (naive skyline -> happy screen -> StoredList preprocess) after
   every op — the only alternative a static deployment has.

   One churn workload, applied identically to both sides: a mix of fresh
   inserts, deliberately dominated inserts (the no-op fast path), random
   deletes and answer deletes (forced repair), over an anti-correlated
   base of [!update_n] points with the serving-style [max_length] cap.
   The baseline rebuild is timed on a subsample of ops (it is the slow
   side) and extrapolated to a per-op rate.

   Reported, and emitted to BENCH_update.json:
   - updates/sec incremental vs full-rebuild baseline (+ speedup)
   - repair depth p50/p99 (distance from the first answer position an op
     invalidated to the end; 0 = answers untouched), computed exactly from
     the answer arrays
   - maintenance tier rates from the dynamic.* counters: exact no-ops,
     stored reuse (bit-unchanged happy set), memo restores, and the
     rebuild fallbacks (one preprocess pass), per applied op *)

open Bench_util
module Vector = Kregret_geom.Vector
module Dataset = Kregret_dataset.Dataset
module Generator = Kregret_dataset.Generator
module Rng = Kregret_dataset.Rng
module Skyline = Kregret_skyline.Skyline
module Happy = Kregret_happy.Happy
module Stored_list = Kregret.Stored_list
module Dynamic = Kregret.Dynamic
module Obs = Kregret_obs

let update_n = ref 10_000
let update_ops = ref 2_000
let update_d = 4
let max_length = 32

(* the workload: deterministic op stream over a mutable live-id mirror *)
type op = Ins of Vector.t | Del of int

let gen_ops rng ~base ~count =
  let next_id = ref (Array.length base) in
  let live = ref (Array.to_list (Array.mapi (fun i _ -> i) base)) in
  let live_arr () = Array.of_list !live in
  let pick_live () =
    let arr = live_arr () in
    arr.(Rng.int rng (Array.length arr))
  in
  List.init count (fun _ ->
      let roll = Rng.int rng 10 in
      if roll < 4 || !live = [] then begin
        (* fresh random point: may enter the skyline or land dominated *)
        let p =
          Array.init update_d (fun _ -> 0.01 +. (0.99 *. Rng.float rng))
        in
        live := !next_id :: !live;
        incr next_id;
        Ins p
      end
      else if roll < 6 then begin
        (* deliberately dominated insert: the exact no-op fast path *)
        let p =
          Array.init update_d (fun _ -> 0.005 +. (0.05 *. Rng.float rng))
        in
        live := !next_id :: !live;
        incr next_id;
        Ins p
      end
      else begin
        let id = pick_live () in
        live := List.filter (fun x -> x <> id) !live;
        Del id
      end)

(* full-rebuild baseline: what one update costs a static pipeline *)
let rebuild_once vecs =
  if Array.length vecs = 0 then 0
  else begin
    let sky_idx = Skyline.naive vecs in
    let sky = Array.map (fun i -> vecs.(i)) sky_idx in
    let happy_idx = Happy.happy_points sky in
    if Array.length happy_idx = 0 then 0
    else
      let happy = Array.map (fun i -> sky.(i)) happy_idx in
      Stored_list.length (Stored_list.preprocess ~max_length happy)
  end

let answer_ids dyn =
  let len = Dynamic.stored_length dyn in
  if len = 0 then [||] else Array.of_list (fst (Dynamic.query dyn ~k:len))

let repair_depth ~before ~after =
  let n = min (Array.length before) (Array.length after) in
  let i = ref 0 in
  while !i < n && before.(!i) = after.(!i) do
    incr i
  done;
  if !i = Array.length before && !i = Array.length after then 0
  else Array.length after - !i

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0 else sorted.(min (n - 1) (p * n / 100))

let run () =
  header "update: incremental insert/delete vs full rebuild";
  let n = !update_n and count = !update_ops in
  let base =
    (Dataset.normalize
       (Generator.anti_correlated (Rng.create bench_seed) ~n ~d:update_d))
      .Dataset.points
  in
  let ops = gen_ops (Rng.create (bench_seed + 1)) ~base ~count in
  note "n=%d d=%d ops=%d max_length=%d" n update_d count max_length;

  (* counters need observability; restore the caller's setting afterwards *)
  let obs_was = Obs.Control.enabled () in
  Obs.Control.set_enabled true;
  let c v = Obs.Registry.counter v ~help:"" in
  let read () =
    List.map
      (fun name -> (name, Obs.Counter.value (c ("dynamic." ^ name))))
      [
        "inserts"; "insert_noops"; "deletes"; "delete_noops"; "stored_reuse";
        "stored_memo_hits"; "stored_rebuilds"; "flushes";
      ]
  in
  let before_counters = read () in

  (* incremental side: one prebuilt state, every op applied in sequence *)
  let dyn, t_build = time (fun () -> Dynamic.create ~max_length base) in
  let depths = Array.make count 0 in
  let t_inc =
    time_only (fun () ->
        List.iteri
          (fun i op ->
            let prev = answer_ids dyn in
            (match op with
            | Ins p -> ignore (Dynamic.insert dyn p)
            | Del id -> ignore (Dynamic.delete dyn id));
            depths.(i) <- repair_depth ~before:prev ~after:(answer_ids dyn))
          ops)
  in
  let deltas =
    List.map2
      (fun (name, b) (_, a) -> (name, a - b))
      before_counters (read ())
  in
  Obs.Control.set_enabled obs_was;
  let delta name = List.assoc name deltas in

  (* baseline side: rebuild from scratch after each op, timed on a
     subsample (every [stride]th op) and extrapolated *)
  let samples = min 60 count in
  let stride = max 1 (count / samples) in
  let live = Hashtbl.create (2 * n) in
  Array.iteri (fun i p -> Hashtbl.replace live i p) base;
  let next = ref (Array.length base) in
  let sampled = ref 0 and t_base_sampled = ref 0. in
  List.iteri
    (fun i op ->
      (match op with
      | Ins p ->
          Hashtbl.replace live !next p;
          incr next
      | Del id -> Hashtbl.remove live id);
      if i mod stride = 0 then begin
        let vecs = Array.of_seq (Hashtbl.to_seq_values live) in
        incr sampled;
        t_base_sampled := !t_base_sampled +. time_only (fun () -> ignore (rebuild_once vecs))
      end)
    ops;
  let per_op_base = !t_base_sampled /. float_of_int (max 1 !sampled) in
  let t_base = per_op_base *. float_of_int count in

  let rate_inc = float_of_int count /. t_inc in
  let rate_base = float_of_int count /. t_base in
  let speedup = t_base /. t_inc in
  Array.sort compare depths;
  let p50 = percentile depths 50 and p99 = percentile depths 99 in
  (* [dynamic.inserts]/[dynamic.deletes] count structural ops only; the
     no-op counters cover the rest, so rates use the right denominator *)
  let structural = delta "inserts" + delta "deletes" in
  let noops = delta "insert_noops" + delta "delete_noops" in
  let rate ctr =
    float_of_int (delta ctr) /. float_of_int (max 1 structural)
  in

  cells [ 34; 14; 14; 10 ]
    [ "side"; "updates/sec"; "total"; "" ];
  cells [ 34; 14; 14; 10 ]
    [ "incremental (Dynamic)"; Printf.sprintf "%.0f" rate_inc; seconds t_inc; "" ];
  cells [ 34; 14; 14; 10 ]
    [
      Printf.sprintf "full rebuild (x%d sampled)" !sampled;
      Printf.sprintf "%.0f" rate_base;
      seconds t_base;
      "";
    ];
  note "speedup %.1fx; initial build %s" speedup (seconds t_build);
  note "repair depth p50=%d p99=%d (answer positions invalidated)" p50 p99;
  note "ops: %.0f%% exact no-ops; per structural op: reuse %.2f, memo %.2f, rebuild %.2f"
    (100. *. float_of_int noops /. float_of_int (max 1 (structural + noops)))
    (rate "stored_reuse") (rate "stored_memo_hits") (rate "stored_rebuilds");

  emit_json ~id:"update"
    ~extra:
      [
        ("n", Int n);
        ("d", Int update_d);
        ("ops", Int count);
        ("max_length", Int max_length);
        ("build_seconds", Float t_build);
        ("updates_per_sec_incremental", Float rate_inc);
        ("updates_per_sec_rebuild", Float rate_base);
        ("speedup", Float speedup);
        ("repair_depth_p50", Int p50);
        ("repair_depth_p99", Int p99);
        ("rebuild_samples", Int !sampled);
      ]
    [
      [
        ("side", String "incremental");
        ("updates_per_sec", Float rate_inc);
        ("seconds", Float t_inc);
        ("structural", Int structural);
        ("noops", Int noops);
        ("stored_reuse", Int (delta "stored_reuse"));
        ("stored_memo_hits", Int (delta "stored_memo_hits"));
        ("stored_rebuilds", Int (delta "stored_rebuilds"));
        ("flushes", Int (delta "flushes"));
      ];
      [
        ("side", String "full_rebuild");
        ("updates_per_sec", Float rate_base);
        ("seconds", Float t_base);
        ("sampled_ops", Int !sampled);
      ];
    ]
