(* Extensions beyond the paper's evaluation (its Section VIII future work):
   average-regret greedy vs worst-case greedy, and the interactive
   regret-minimization loop. Not paper figures — reported for completeness
   and regression tracking. *)

open Bench_util
module Dataset = Kregret_dataset.Dataset
module Vector = Kregret_geom.Vector
module Rng = Kregret_dataset.Rng
module Geo_greedy = Kregret.Geo_greedy
module Average_regret = Kregret.Average_regret
module Interactive = Kregret.Interactive

let run () =
  let t = tiers_of ~d:5 ~n:10_000 "stocks" in
  let points = t.happy.Dataset.points in

  header "Extension -- average-regret greedy vs worst-case greedy (stocks)";
  let ctx = Average_regret.prepare points in
  let widths = [ 6; 16; 16; 16; 16 ] in
  cells widths [ "k"; "avg(avg-greedy)"; "avg(GeoGreedy)"; "mrr(avg-greedy)"; "mrr(GeoGreedy)" ];
  List.iter
    (fun k ->
      let avg = Average_regret.greedy ctx ~points ~k () in
      let geo = Geo_greedy.run ~points ~k () in
      let geo_sel = List.map (fun i -> points.(i)) geo.Geo_greedy.order in
      cells widths
        [
          string_of_int k;
          Printf.sprintf "%.4f" avg.Average_regret.avg_regret;
          Printf.sprintf "%.4f" (Average_regret.average_regret ctx geo_sel);
          Printf.sprintf "%.4f" avg.Average_regret.mrr;
          Printf.sprintf "%.4f" geo.Geo_greedy.mrr;
        ])
    [ 10; 25; 50 ];
  note "expected: each greedy wins (weakly) on its own objective";

  header "Extension -- GeoGreedy vs exact optimum (2-D, Optimal2d DP)";
  let ds2 = tiers_of ~d:2 ~n:50_000 "independent" in
  let pts2 = ds2.happy.Dataset.points in
  let widths = [ 6; 12; 12; 10 ] in
  cells widths [ "k"; "optimal"; "GeoGreedy"; "ratio" ];
  List.iter
    (fun k ->
      let opt = Kregret.Optimal2d.solve ~points:pts2 ~k () in
      let geo = Kregret.Geo_greedy.run ~points:pts2 ~k () in
      let ratio =
        if opt.Kregret.Optimal2d.mrr > 1e-12 then
          geo.Kregret.Geo_greedy.mrr /. opt.Kregret.Optimal2d.mrr
        else 1.
      in
      cells widths
        [
          string_of_int k;
          Printf.sprintf "%.4f" opt.Kregret.Optimal2d.mrr;
          Printf.sprintf "%.4f" geo.Kregret.Geo_greedy.mrr;
          Printf.sprintf "%.2fx" ratio;
        ])
    [ 2; 3; 4 ];
  note "expected: greedy near-optimal for k > d; at k = d the boundary";
  note "seeding leaves greedy no freedom and the gap can be large";

  header "Extension -- interactive regret minimization (hidden random users)";
  let widths = [ 8; 12; 12; 14 ] in
  cells widths [ "user"; "questions"; "bound"; "true regret" ];
  let rng = Rng.create 4242 in
  for user = 1 to 5 do
    let utility =
      Vector.normalize
        (Array.init t.happy.Dataset.dim (fun _ ->
             abs_float (Rng.gaussian rng ~mu:0. ~sigma:1.) +. 0.01))
    in
    let r = Interactive.simulate ~points ~utility () in
    let final_bound =
      match List.rev r.Interactive.rounds with
      | last :: _ -> last.Interactive.regret_bound
      | [] -> nan
    in
    cells widths
      [
        string_of_int user;
        string_of_int r.Interactive.questions;
        Printf.sprintf "%.4f" final_bound;
        Printf.sprintf "%.4f" r.Interactive.true_regret;
      ]
  done;
  note "expected: a handful of questions; true regret below the bound"
